//! Zipfian sampling.
//!
//! The paper attaches Zipfian-distributed weights to the edges of the email-EuAll,
//! cit-HepPh and web-NotreDame datasets ("We use the Zipfian distribution to add the weight
//! to each edge and the edge weight represents the appearance times in the stream").  The
//! sampler here draws ranks `1..=n` with probability proportional to `1 / rank^s` using a
//! precomputed cumulative table and binary search, which is exact and fast for the sizes
//! used in the experiments.

use crate::rng::Xoshiro256;

/// A Zipf(`n`, `s`) sampler over ranks `1..=n`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
    exponent: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `1..=n` with exponent `s` (> 0).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(s.is_finite() && s > 0.0, "Zipf exponent must be positive and finite");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cumulative.push(total);
        }
        // Normalise to a proper CDF.
        for value in &mut cumulative {
            *value /= total;
        }
        // Guard against floating point drift: the last entry must be exactly 1.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Self { cumulative, exponent: s }
    }

    /// Number of ranks in the support.
    pub fn support(&self) -> usize {
        self.cumulative.len()
    }

    /// The exponent `s` the sampler was built with.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Draws a rank in `1..=n`; rank 1 is the most likely.
    pub fn sample(&self, rng: &mut Xoshiro256) -> usize {
        let u = rng.next_f64();
        // First index whose cumulative probability is >= u.
        match self.cumulative.binary_search_by(|p| p.partial_cmp(&u).expect("CDF is finite")) {
            Ok(index) => index + 1,
            Err(index) => index + 1,
        }
    }

    /// Probability mass of a given rank (1-based).
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 || rank > self.cumulative.len() {
            return 0.0;
        }
        let upper = self.cumulative[rank - 1];
        let lower = if rank >= 2 { self.cumulative[rank - 2] } else { 0.0 };
        upper - lower
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_within_support() {
        let sampler = ZipfSampler::new(100, 1.2);
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..10_000 {
            let rank = sampler.sample(&mut rng);
            assert!((1..=100).contains(&rank));
        }
        assert_eq!(sampler.support(), 100);
        assert!((sampler.exponent() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn rank_one_is_most_frequent() {
        let sampler = ZipfSampler::new(50, 1.0);
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut counts = vec![0usize; 51];
        for _ in 0..50_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        let max_rank = counts.iter().enumerate().max_by_key(|(_, &c)| c).map(|(r, _)| r);
        assert_eq!(max_rank, Some(1));
        assert!(counts[1] > counts[10]);
        assert!(counts[1] > counts[50]);
    }

    #[test]
    fn pmf_sums_to_one_and_matches_ratios() {
        let sampler = ZipfSampler::new(10, 1.0);
        let total: f64 = (1..=10).map(|r| sampler.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // With s = 1, P(1) / P(2) should be 2.
        assert!((sampler.pmf(1) / sampler.pmf(2) - 2.0).abs() < 1e-9);
        assert_eq!(sampler.pmf(0), 0.0);
        assert_eq!(sampler.pmf(11), 0.0);
    }

    #[test]
    fn empirical_frequencies_track_pmf() {
        let sampler = ZipfSampler::new(20, 1.5);
        let mut rng = Xoshiro256::seed_from_u64(3);
        let draws = 200_000;
        let mut counts = [0usize; 21];
        for _ in 0..draws {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for (rank, &count) in counts.iter().enumerate().take(6).skip(1) {
            let observed = count as f64 / draws as f64;
            let expected = sampler.pmf(rank);
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {rank}: observed {observed} vs expected {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "support must be non-empty")]
    fn empty_support_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent must be positive")]
    fn non_positive_exponent_panics() {
        let _ = ZipfSampler::new(10, 0.0);
    }

    #[test]
    fn single_rank_support_always_returns_one() {
        let sampler = ZipfSampler::new(1, 2.0);
        let mut rng = Xoshiro256::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(sampler.sample(&mut rng), 1);
        }
    }
}
