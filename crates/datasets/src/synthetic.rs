//! Synthetic stand-ins for the paper's five evaluation datasets.
//!
//! The originals are not redistributable, so each [`SyntheticDataset`] profile records the
//! published node/edge counts (Section VII-A) and generates a power-law stream at the same
//! scale with Zipfian weights.  CAIDA (445M items over 2.6M IPs) is scaled down by default
//! so that the full figure sweep remains laptop-sized; the scale factor is explicit so the
//! harness reports it, and the matrix-width sweep is scaled by the same factor to preserve
//! the `m²·l / |E|` ratios the figures are really about.
//!
//! Every profile can also be loaded from a real SNAP file if one is provided
//! (see [`crate::snap`]), making the harness directly comparable with the paper when the
//! data is available.

use crate::powerlaw::PreferentialAttachmentGenerator;
use crate::rng::Xoshiro256;
use gss_graph::{StreamEdge, VecStream};
use serde::{Deserialize, Serialize};

/// The five datasets of Section VII-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyntheticDataset {
    /// email-EuAll: 265,214 nodes, 420,045 edges (e-mail communication graph).
    EmailEuAll,
    /// cit-HepPh: 34,546 nodes, 421,578 edges (citation graph).
    CitHepPh,
    /// web-NotreDame: 325,729 nodes, 1,497,134 edges (web hyperlink graph).
    WebNotreDame,
    /// lkml-reply: 63,399 nodes, 1,096,440 items (mailing-list communication records).
    LkmlReply,
    /// CAIDA trace: 2,601,005 nodes, 445,440,480 items in the paper; scaled down here.
    CaidaNetworkFlow,
}

impl SyntheticDataset {
    /// All five datasets, in the order the paper presents them.
    pub const ALL: [SyntheticDataset; 5] = [
        SyntheticDataset::EmailEuAll,
        SyntheticDataset::CitHepPh,
        SyntheticDataset::WebNotreDame,
        SyntheticDataset::LkmlReply,
        SyntheticDataset::CaidaNetworkFlow,
    ];

    /// The dataset's display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SyntheticDataset::EmailEuAll => "email-EuAll",
            SyntheticDataset::CitHepPh => "cit-HepPh",
            SyntheticDataset::WebNotreDame => "web-NotreDame",
            SyntheticDataset::LkmlReply => "lkml-reply",
            SyntheticDataset::CaidaNetworkFlow => "Caida-networkflow",
        }
    }

    /// Full-scale profile with the paper's published sizes.
    pub fn paper_profile(self) -> DatasetProfile {
        match self {
            SyntheticDataset::EmailEuAll => DatasetProfile {
                dataset: self,
                vertices: 265_214,
                stream_items: 420_045,
                scale: 1.0,
                repeat_probability: 0.10,
                seed: 0x00E4_4A11,
            },
            SyntheticDataset::CitHepPh => DatasetProfile {
                dataset: self,
                vertices: 34_546,
                stream_items: 421_578,
                scale: 1.0,
                repeat_probability: 0.05,
                seed: 0xC17_4E9,
            },
            SyntheticDataset::WebNotreDame => DatasetProfile {
                dataset: self,
                vertices: 325_729,
                stream_items: 1_497_134,
                scale: 1.0,
                repeat_probability: 0.05,
                seed: 0x040D_8EDA,
            },
            SyntheticDataset::LkmlReply => DatasetProfile {
                dataset: self,
                vertices: 63_399,
                stream_items: 1_096_440,
                scale: 1.0,
                repeat_probability: 0.45,
                seed: 0x01C7_10BE,
            },
            SyntheticDataset::CaidaNetworkFlow => DatasetProfile {
                dataset: self,
                vertices: 2_601_005,
                stream_items: 445_440_480,
                scale: 1.0,
                repeat_probability: 0.80,
                seed: 0x00CA_1DA0,
            },
        }
    }

    /// Profile scaled so the whole figure sweep is feasible on a laptop: the three SNAP
    /// graphs are kept at full size, lkml is kept at full size, CAIDA is reduced to ~1/64 of
    /// the original item count.
    pub fn laptop_profile(self) -> DatasetProfile {
        match self {
            SyntheticDataset::CaidaNetworkFlow => self.paper_profile().scaled(1.0 / 64.0),
            _ => self.paper_profile(),
        }
    }

    /// A heavily reduced profile (~1/32 of the laptop scale, floor of 2k vertices / 10k
    /// items) used by smoke tests and quick benchmark runs.
    pub fn smoke_profile(self) -> DatasetProfile {
        let laptop = self.laptop_profile();
        let scale = 1.0 / 32.0;
        let mut profile = laptop.scaled(scale);
        profile.vertices = profile.vertices.max(2_000);
        profile.stream_items = profile.stream_items.max(10_000);
        profile
    }

    /// The matrix widths swept in the paper's figures for this dataset (Figs. 8–12).
    pub fn paper_widths(self) -> Vec<usize> {
        match self {
            SyntheticDataset::EmailEuAll => vec![600, 650, 700, 750, 800, 850, 900, 950, 1000],
            SyntheticDataset::CitHepPh => vec![400, 500, 600, 700, 800, 900, 1000],
            SyntheticDataset::WebNotreDame => {
                vec![800, 850, 900, 950, 1000, 1050, 1100, 1150, 1200]
            }
            SyntheticDataset::LkmlReply => vec![300, 400, 500, 600, 700, 800, 900, 1000],
            SyntheticDataset::CaidaNetworkFlow => {
                vec![5000, 6000, 7000, 8000, 9000, 10000]
            }
        }
    }
}

/// A concrete, generatable workload description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Which paper dataset this profile imitates.
    pub dataset: SyntheticDataset,
    /// Number of distinct vertices to generate.
    pub vertices: usize,
    /// Number of stream items to generate.
    pub stream_items: usize,
    /// Scale factor relative to the paper's dataset (1.0 = full size).
    pub scale: f64,
    /// Probability that an item repeats an already-emitted edge.
    pub repeat_probability: f64,
    /// Generation seed.
    pub seed: u64,
}

impl DatasetProfile {
    /// Returns a copy scaled by `factor` (both vertices and items), keeping at least 100
    /// vertices and 100 items.
    pub fn scaled(&self, factor: f64) -> DatasetProfile {
        DatasetProfile {
            dataset: self.dataset,
            vertices: ((self.vertices as f64 * factor) as usize).max(100),
            stream_items: ((self.stream_items as f64 * factor) as usize).max(100),
            scale: self.scale * factor,
            repeat_probability: self.repeat_probability,
            seed: self.seed,
        }
    }

    /// Matrix widths to sweep for this profile: the paper's widths, scaled by `sqrt(scale)`
    /// so that `width² / |E|` matches the paper's memory ratios.
    pub fn widths(&self) -> Vec<usize> {
        self.dataset
            .paper_widths()
            .into_iter()
            .map(|w| ((w as f64) * self.scale.sqrt()).round().max(16.0) as usize)
            .collect()
    }

    /// Generates the stream for this profile.
    pub fn generate(&self) -> Vec<StreamEdge> {
        let mut generator =
            PreferentialAttachmentGenerator::new(self.vertices, self.stream_items, self.seed);
        generator.repeat_probability = self.repeat_probability;
        let mut items = generator.generate();
        // Communication-style datasets arrive in timestamp order already; shuffling the
        // arrival order of the web/citation graphs avoids generation artifacts while keeping
        // timestamps consistent with position.
        if matches!(
            self.dataset,
            SyntheticDataset::EmailEuAll
                | SyntheticDataset::CitHepPh
                | SyntheticDataset::WebNotreDame
        ) {
            let mut rng = Xoshiro256::seed_from_u64(self.seed ^ 0x5F5F_5F5F);
            rng.shuffle(&mut items);
            for (position, item) in items.iter_mut().enumerate() {
                item.timestamp = position as u64;
            }
        }
        items
    }

    /// Generates the stream and wraps it in a replayable [`VecStream`].
    pub fn generate_stream(&self) -> VecStream {
        VecStream::new(self.generate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_graph::{AdjacencyListGraph, SummaryWrite};

    #[test]
    fn all_profiles_have_positive_sizes() {
        for dataset in SyntheticDataset::ALL {
            let paper = dataset.paper_profile();
            assert!(paper.vertices > 0);
            assert!(paper.stream_items > 0);
            assert_eq!(paper.scale, 1.0);
            assert!(!dataset.name().is_empty());
            assert!(!dataset.paper_widths().is_empty());
        }
    }

    #[test]
    fn paper_profiles_match_published_counts() {
        let email = SyntheticDataset::EmailEuAll.paper_profile();
        assert_eq!(email.vertices, 265_214);
        assert_eq!(email.stream_items, 420_045);
        let cit = SyntheticDataset::CitHepPh.paper_profile();
        assert_eq!(cit.vertices, 34_546);
        assert_eq!(cit.stream_items, 421_578);
        let caida = SyntheticDataset::CaidaNetworkFlow.paper_profile();
        assert_eq!(caida.vertices, 2_601_005);
        assert_eq!(caida.stream_items, 445_440_480);
    }

    #[test]
    fn laptop_profile_scales_down_caida_only() {
        for dataset in SyntheticDataset::ALL {
            let laptop = dataset.laptop_profile();
            let paper = dataset.paper_profile();
            if dataset == SyntheticDataset::CaidaNetworkFlow {
                assert!(laptop.stream_items < paper.stream_items);
                assert!(laptop.scale < 1.0);
            } else {
                assert_eq!(laptop.stream_items, paper.stream_items);
            }
        }
    }

    #[test]
    fn scaled_profile_keeps_minimums() {
        let tiny = SyntheticDataset::CitHepPh.paper_profile().scaled(1e-9);
        assert!(tiny.vertices >= 100);
        assert!(tiny.stream_items >= 100);
    }

    #[test]
    fn widths_scale_with_sqrt_of_scale() {
        let paper = SyntheticDataset::LkmlReply.paper_profile();
        let quarter = paper.scaled(0.25);
        let paper_widths = paper.widths();
        let scaled_widths = quarter.widths();
        assert_eq!(paper_widths.len(), scaled_widths.len());
        for (p, s) in paper_widths.iter().zip(&scaled_widths) {
            let expected = (*p as f64 * 0.5).round() as usize;
            assert!((expected as i64 - *s as i64).abs() <= 1, "{p} -> {s}, expected {expected}");
        }
    }

    #[test]
    fn smoke_profile_generates_quickly_and_matches_request() {
        let profile = SyntheticDataset::EmailEuAll.smoke_profile();
        let items = profile.generate();
        assert_eq!(items.len(), profile.stream_items);
        let mut graph = AdjacencyListGraph::new();
        graph.insert_stream(&mut items.clone().into_iter());
        assert!(graph.vertex_count() > 100);
        // Deterministic regeneration.
        assert_eq!(items, profile.generate());
    }

    #[test]
    fn shuffled_datasets_have_position_timestamps() {
        let profile = SyntheticDataset::CitHepPh.smoke_profile();
        let items = profile.generate();
        for (position, item) in items.iter().enumerate() {
            assert_eq!(item.timestamp, position as u64);
        }
    }

    #[test]
    fn generate_stream_wraps_all_items() {
        let profile = SyntheticDataset::LkmlReply.smoke_profile().scaled(0.1);
        let stream = profile.generate_stream();
        assert_eq!(stream.len(), profile.stream_items.max(100));
    }
}
