//! Power-law graph stream generators.
//!
//! Real-world streaming graphs — the network, citation, web and e-mail graphs the paper
//! evaluates on — have heavy-tailed degree distributions ("In the real-world graphs, node
//! degrees usually follow the power law distribution"), and the skew is precisely what
//! motivates square hashing.  Two generators are provided:
//!
//! * [`PreferentialAttachmentGenerator`] — a directed Barabási–Albert-style process: each
//!   new edge chooses endpoints preferentially by current degree, producing a power-law
//!   degree distribution and a natural arrival order (timestamps increase as the graph
//!   grows), which is how the paper replays its datasets.
//! * [`ConfigurationModelGenerator`] — samples both endpoints of every edge independently
//!   from Zipfian node popularity, giving direct control over the skew exponent; useful for
//!   the parameter-ablation experiments.

use crate::rng::Xoshiro256;
use crate::zipf::ZipfSampler;
use gss_graph::{StreamEdge, VertexId, Weight};

/// Directed preferential-attachment stream generator.
#[derive(Debug, Clone)]
pub struct PreferentialAttachmentGenerator {
    /// Number of distinct vertices in the generated graph.
    pub vertices: usize,
    /// Number of stream items (edges, possibly repeating) to generate.
    pub edges: usize,
    /// Zipf exponent for the edge-weight distribution (the paper uses Zipfian weights).
    pub weight_exponent: f64,
    /// Maximum edge weight rank (weights are drawn from `1..=max_weight`).
    pub max_weight: usize,
    /// Probability that a new item repeats an existing edge instead of creating a new one,
    /// emulating the multi-occurrence items of communication streams (lkml, CAIDA).
    pub repeat_probability: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl PreferentialAttachmentGenerator {
    /// Creates a generator with the paper's default weighting (Zipf s = 1.2, weights ≤ 1000)
    /// and a mild repeat probability.
    pub fn new(vertices: usize, edges: usize, seed: u64) -> Self {
        Self {
            vertices,
            edges,
            weight_exponent: 1.2,
            max_weight: 1000,
            repeat_probability: 0.2,
            seed,
        }
    }

    /// Generates the full stream.
    ///
    /// The process keeps a multiset of endpoint "stubs"; each new edge picks its source and
    /// destination from the stubs with probability proportional to current degree (plus one
    /// smoothing stub per vertex), which yields a power-law degree distribution.
    pub fn generate(&self) -> Vec<StreamEdge> {
        assert!(self.vertices >= 2, "need at least two vertices");
        let mut rng = Xoshiro256::seed_from_u64(self.seed);
        let weight_sampler = ZipfSampler::new(self.max_weight.max(1), self.weight_exponent);
        let mut items: Vec<StreamEdge> = Vec::with_capacity(self.edges);
        // Degree-proportional sampling pool: starts with one stub per vertex so isolated
        // vertices can still be chosen.
        let mut stubs: Vec<VertexId> = (0..self.vertices as VertexId).collect();
        for timestamp in 0..self.edges as u64 {
            let repeat = !items.is_empty() && rng.next_bool(self.repeat_probability);
            let (source, destination) = if repeat {
                let existing = items[rng.next_index(items.len())];
                (existing.source, existing.destination)
            } else {
                let source = stubs[rng.next_index(stubs.len())];
                // Rejection loop keeps self-loops rare but permitted after a few attempts
                // (real traces contain occasional self-communication).
                let mut destination = stubs[rng.next_index(stubs.len())];
                let mut attempts = 0;
                while destination == source && attempts < 4 {
                    destination = stubs[rng.next_index(stubs.len())];
                    attempts += 1;
                }
                (source, destination)
            };
            let weight = weight_sampler.sample(&mut rng) as Weight;
            items.push(StreamEdge::new(source, destination, timestamp, weight));
            // Preferential attachment: both endpoints gain a stub.
            stubs.push(source);
            stubs.push(destination);
        }
        items
    }
}

/// Configuration-model style generator with independent Zipfian endpoint popularity.
#[derive(Debug, Clone)]
pub struct ConfigurationModelGenerator {
    /// Number of distinct vertices.
    pub vertices: usize,
    /// Number of stream items to generate.
    pub edges: usize,
    /// Zipf exponent of the out-degree (source popularity) distribution.
    pub source_exponent: f64,
    /// Zipf exponent of the in-degree (destination popularity) distribution.
    pub destination_exponent: f64,
    /// Zipf exponent of the weight distribution.
    pub weight_exponent: f64,
    /// Maximum weight rank.
    pub max_weight: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl ConfigurationModelGenerator {
    /// Creates a generator with symmetric endpoint skew.
    pub fn new(vertices: usize, edges: usize, skew: f64, seed: u64) -> Self {
        Self {
            vertices,
            edges,
            source_exponent: skew,
            destination_exponent: skew,
            weight_exponent: 1.2,
            max_weight: 1000,
            seed,
        }
    }

    /// Generates the full stream.  Vertex popularity ranks are shuffled so that vertex id 0
    /// is not always the hub (hash-based sketches would otherwise see artificially regular
    /// input).
    pub fn generate(&self) -> Vec<StreamEdge> {
        assert!(self.vertices >= 2, "need at least two vertices");
        let mut rng = Xoshiro256::seed_from_u64(self.seed);
        let source_sampler = ZipfSampler::new(self.vertices, self.source_exponent);
        let destination_sampler = ZipfSampler::new(self.vertices, self.destination_exponent);
        let weight_sampler = ZipfSampler::new(self.max_weight.max(1), self.weight_exponent);
        // rank -> vertex id permutations (independent for sources and destinations).
        let mut source_perm: Vec<VertexId> = (0..self.vertices as VertexId).collect();
        let mut destination_perm: Vec<VertexId> = (0..self.vertices as VertexId).collect();
        rng.shuffle(&mut source_perm);
        rng.shuffle(&mut destination_perm);

        let mut items = Vec::with_capacity(self.edges);
        for timestamp in 0..self.edges as u64 {
            let source = source_perm[source_sampler.sample(&mut rng) - 1];
            let destination = destination_perm[destination_sampler.sample(&mut rng) - 1];
            let weight = weight_sampler.sample(&mut rng) as Weight;
            items.push(StreamEdge::new(source, destination, timestamp, weight));
        }
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_graph::{AdjacencyListGraph, SummaryWrite};

    #[test]
    fn preferential_attachment_produces_requested_item_count() {
        let generator = PreferentialAttachmentGenerator::new(1000, 5000, 42);
        let items = generator.generate();
        assert_eq!(items.len(), 5000);
        assert!(items.iter().all(|e| (e.source as usize) < 1000));
        assert!(items.iter().all(|e| (e.destination as usize) < 1000));
        assert!(items.iter().all(|e| e.weight >= 1));
    }

    #[test]
    fn preferential_attachment_is_deterministic_per_seed() {
        let a = PreferentialAttachmentGenerator::new(500, 2000, 7).generate();
        let b = PreferentialAttachmentGenerator::new(500, 2000, 7).generate();
        let c = PreferentialAttachmentGenerator::new(500, 2000, 8).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn preferential_attachment_has_skewed_degrees() {
        let items = PreferentialAttachmentGenerator::new(2000, 20_000, 3).generate();
        let mut graph = AdjacencyListGraph::new();
        graph.insert_stream(&mut items.into_iter());
        let mut degrees: Vec<usize> =
            graph.vertices().iter().map(|&v| graph.out_degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top_share: usize = degrees.iter().take(degrees.len() / 100 + 1).sum();
        let total: usize = degrees.iter().sum();
        // The top 1% of vertices should own a disproportionate share of edges (heavy tail).
        assert!(
            top_share as f64 > total as f64 * 0.05,
            "top 1% owns {top_share}/{total}, not heavy-tailed"
        );
    }

    #[test]
    fn timestamps_are_strictly_increasing() {
        let items = PreferentialAttachmentGenerator::new(100, 1000, 5).generate();
        for window in items.windows(2) {
            assert!(window[0].timestamp < window[1].timestamp);
        }
    }

    #[test]
    fn configuration_model_respects_bounds_and_determinism() {
        let generator = ConfigurationModelGenerator::new(300, 3000, 1.1, 99);
        let a = generator.generate();
        let b = generator.generate();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3000);
        assert!(a.iter().all(|e| (e.source as usize) < 300 && (e.destination as usize) < 300));
    }

    #[test]
    fn configuration_model_skew_concentrates_sources() {
        let items = ConfigurationModelGenerator::new(1000, 30_000, 1.5, 17).generate();
        let mut counts = std::collections::HashMap::new();
        for item in &items {
            *counts.entry(item.source).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        // With a strong Zipf skew the most popular source should emit far more than average.
        let average = items.len() / counts.len().max(1);
        assert!(max > average * 5, "max {max} vs average {average}");
    }

    #[test]
    #[should_panic(expected = "at least two vertices")]
    fn tiny_vertex_count_panics() {
        let _ = PreferentialAttachmentGenerator::new(1, 10, 0).generate();
    }
}
