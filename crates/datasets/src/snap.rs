//! Parsing of SNAP-style edge-list files.
//!
//! The three static datasets the paper uses (email-EuAll, cit-HepPh, web-NotreDame) are
//! distributed by SNAP as whitespace-separated `src dst` lines with `#` comments.  The
//! communication datasets (lkml-reply, CAIDA) additionally carry a weight and/or a
//! timestamp column.  [`parse_snap_edges`] accepts all of these: 2, 3 or 4 columns per line,
//! interpreted as `src dst [weight [timestamp]]`.
//!
//! Weights default to 1 and timestamps default to the line's position, which reproduces the
//! paper's setup of inserting the edges one by one "to simulate the procedure of real-world
//! incremental updating".

use gss_graph::{StreamEdge, Timestamp, VertexId, Weight};
use std::io::BufRead;

/// An error produced while parsing an edge-list file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for SnapParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SnapParseError {}

/// Parses SNAP-style edge-list text into stream items.
///
/// Lines starting with `#` or `%` and blank lines are skipped.  Each remaining line must
/// contain 2–4 whitespace-separated fields: `source destination [weight [timestamp]]`.
pub fn parse_snap_edges(text: &str) -> Result<Vec<StreamEdge>, SnapParseError> {
    let mut items = Vec::new();
    for (index, raw_line) in text.lines().enumerate() {
        let line_number = index + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 2 || fields.len() > 4 {
            return Err(SnapParseError {
                line: line_number,
                message: format!("expected 2-4 fields, found {}", fields.len()),
            });
        }
        let parse_vertex = |field: &str, what: &str| -> Result<VertexId, SnapParseError> {
            field.parse::<VertexId>().map_err(|_| SnapParseError {
                line: line_number,
                message: format!("invalid {what} vertex id {field:?}"),
            })
        };
        let source = parse_vertex(fields[0], "source")?;
        let destination = parse_vertex(fields[1], "destination")?;
        let weight: Weight = if fields.len() >= 3 {
            fields[2].parse::<Weight>().map_err(|_| SnapParseError {
                line: line_number,
                message: format!("invalid weight {:?}", fields[2]),
            })?
        } else {
            1
        };
        let timestamp: Timestamp = if fields.len() >= 4 {
            fields[3].parse::<Timestamp>().map_err(|_| SnapParseError {
                line: line_number,
                message: format!("invalid timestamp {:?}", fields[3]),
            })?
        } else {
            items.len() as Timestamp
        };
        items.push(StreamEdge::new(source, destination, timestamp, weight));
    }
    Ok(items)
}

/// Parses a SNAP edge list from any buffered reader (e.g. an open file).
pub fn parse_snap_reader<R: BufRead>(reader: R) -> Result<Vec<StreamEdge>, SnapParseError> {
    let mut text = String::new();
    for (index, line) in reader.lines().enumerate() {
        match line {
            Ok(content) => {
                text.push_str(&content);
                text.push('\n');
            }
            Err(error) => {
                return Err(SnapParseError {
                    line: index + 1,
                    message: format!("I/O error: {error}"),
                })
            }
        }
    }
    parse_snap_edges(&text)
}

/// Serialises stream items back to the 4-column SNAP-like format accepted by
/// [`parse_snap_edges`] (useful for exporting generated workloads).
pub fn format_snap_edges(items: &[StreamEdge]) -> String {
    let mut out = String::with_capacity(items.len() * 16);
    out.push_str("# source destination weight timestamp\n");
    for item in items {
        out.push_str(&format!(
            "{} {} {} {}\n",
            item.source, item.destination, item.weight, item.timestamp
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_two_column_snap_files() {
        let text = "# Directed graph\n# FromNodeId ToNodeId\n0 1\n0 2\n1 2\n";
        let items = parse_snap_edges(text).unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0], StreamEdge::new(0, 1, 0, 1));
        assert_eq!(items[2], StreamEdge::new(1, 2, 2, 1));
    }

    #[test]
    fn parses_weights_and_timestamps() {
        let text = "5 6 3 100\n6 7 2 50\n";
        let items = parse_snap_edges(text).unwrap();
        assert_eq!(items[0], StreamEdge::new(5, 6, 100, 3));
        assert_eq!(items[1], StreamEdge::new(6, 7, 50, 2));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "\n% konect style comment\n# snap comment\n1 2\n\n3 4\n";
        let items = parse_snap_edges(text).unwrap();
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = parse_snap_edges("1\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("expected 2-4 fields"));

        let err = parse_snap_edges("1 2\nx 4\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("source"));

        let err = parse_snap_edges("1 2 notaweight\n").unwrap_err();
        assert!(err.message.contains("weight"));

        let err = parse_snap_edges("1 2 3 notatime\n").unwrap_err();
        assert!(err.message.contains("timestamp"));

        let err = parse_snap_edges("1 2 3 4 5\n").unwrap_err();
        assert!(err.message.contains("expected 2-4 fields"));
    }

    #[test]
    fn negative_weights_are_accepted_as_deletions() {
        let items = parse_snap_edges("1 2 -3\n").unwrap();
        assert_eq!(items[0].weight, -3);
    }

    #[test]
    fn reader_interface_matches_text_interface() {
        let text = "1 2\n3 4 9\n";
        let from_reader = parse_snap_reader(std::io::Cursor::new(text)).unwrap();
        let from_text = parse_snap_edges(text).unwrap();
        assert_eq!(from_reader, from_text);
    }

    #[test]
    fn format_round_trips_through_parse() {
        let items = vec![StreamEdge::new(1, 2, 10, 3), StreamEdge::new(4, 5, 11, -1)];
        let text = format_snap_edges(&items);
        let parsed = parse_snap_edges(&text).unwrap();
        assert_eq!(parsed, items);
    }

    #[test]
    fn display_of_error_mentions_line() {
        let err = parse_snap_edges("bad\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }
}
