//! Deterministic pseudo-random number generation.
//!
//! Experiments must be reproducible from a single seed, and the core crates must not pull in
//! heavyweight dependencies, so this module implements two small, well-known generators:
//!
//! * [`SplitMix64`] — used to expand a single `u64` seed into the state of other generators
//!   (the standard seeding procedure recommended by the xoshiro authors).
//! * [`Xoshiro256`] — xoshiro256**, a fast, high-quality non-cryptographic generator used
//!   for all workload generation.

/// SplitMix64: a tiny generator primarily used for seeding [`Xoshiro256`].
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workhorse generator for workload synthesis.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    state: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose 256-bit state is expanded from `seed` with SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self { state: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Returns the next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns a uniformly distributed integer in `[0, bound)` using Lemire's method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-and-shift with rejection of the biased region.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed `usize` in `[0, bound)`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_index(i + 1);
            items.swap(i, j);
        }
    }

    /// Draws `count` distinct indices from `[0, bound)` (requires `count <= bound`).
    ///
    /// Uses Floyd's algorithm, so it is efficient even when `bound` is large.
    pub fn sample_distinct(&mut self, bound: usize, count: usize) -> Vec<usize> {
        assert!(count <= bound, "cannot sample {count} distinct values from {bound}");
        let mut chosen = std::collections::HashSet::with_capacity(count);
        let mut out = Vec::with_capacity(count);
        for j in (bound - count)..bound {
            let t = self.next_index(j + 1);
            let value = if chosen.contains(&t) { j } else { t };
            chosen.insert(value);
            out.push(value);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_differs_across_seeds() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn xoshiro_is_deterministic_for_a_seed() {
        let mut a = Xoshiro256::seed_from_u64(7);
        let mut b = Xoshiro256::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound_and_covers_range() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = rng.next_below(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should be hit in 10k draws");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Xoshiro256::seed_from_u64(0).next_below(0);
    }

    #[test]
    fn next_bool_probability_is_roughly_respected() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.next_bool(0.25)).count();
        let frequency = hits as f64 / 100_000.0;
        assert!((frequency - 0.25).abs() < 0.02, "frequency {frequency} too far from 0.25");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let mut data: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut data);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(data, (0..100).collect::<Vec<u32>>(), "shuffle should change order");
    }

    #[test]
    fn sample_distinct_returns_unique_values_in_range() {
        let mut rng = Xoshiro256::seed_from_u64(13);
        let sample = rng.sample_distinct(1000, 50);
        assert_eq!(sample.len(), 50);
        let distinct: std::collections::HashSet<_> = sample.iter().collect();
        assert_eq!(distinct.len(), 50);
        assert!(sample.iter().all(|&x| x < 1000));
    }

    #[test]
    fn uniformity_of_mean_is_reasonable() {
        let mut rng = Xoshiro256::seed_from_u64(21);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
