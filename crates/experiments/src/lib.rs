//! # gss-experiments — reproducing every table and figure of the GSS paper
//!
//! This crate turns the core library, the baselines and the dataset generators into the
//! evaluation of Section VII:
//!
//! * [`metrics`] — ARE, average precision, true-negative recall, buffer percentage, Mips
//!   (Section VII-B).
//! * [`scale`] — smoke / laptop / paper experiment scales (`GSS_SCALE` environment
//!   variable).
//! * [`context`] — per-dataset streams, exact ground truth and query-set construction.
//! * [`builders`] — the paper's sizing rules for GSS and the ratio-memory TCM baselines.
//! * [`figures`] — one runner per table/figure: Fig. 3 (theory), Figs. 8–12 (primitive and
//!   compound query accuracy), Fig. 13 (buffer percentage), Table I (update speed), Fig. 14
//!   (triangle counting vs TRIÈST), Fig. 15 (subgraph matching vs an exact matcher), plus
//!   parameter ablations and a model-vs-measurement check.
//! * [`report`] — ASCII/CSV result tables written under `target/experiments/`.
//!
//! The `gss-experiments` binary exposes all of this on the command line; the `gss-bench`
//! crate wraps the same runners as `cargo bench` targets.
//!
//! ## Quick start
//!
//! ```
//! use gss_experiments::{ExperimentScale, Table};
//!
//! // The scale is read from GSS_SCALE (smoke by default) and round-trips by name.
//! let scale = ExperimentScale::from_env();
//! assert_eq!(ExperimentScale::parse(scale.name()), Some(scale));
//!
//! // Result tables render to ASCII and CSV.
//! let mut table = Table::new("demo", &["x", "y"]);
//! table.push_row(vec!["1".into(), "2".into()]);
//! assert!(table.to_csv().contains("1,2"));
//! ```

pub mod builders;
pub mod context;
pub mod figures;
pub mod metrics;
pub mod report;
pub mod scale;

pub use builders::{build_gss, build_tcm_with_ratio, gss_config_for, TCM_DEPTH};
pub use context::DatasetRun;
pub use figures::{
    run_accuracy_figure, run_fig03, run_fig13, run_fig14, run_fig15, run_model_vs_measured,
    run_parameter_ablation, run_table1, AccuracyFigure,
};
pub use report::{
    emit, experiments_dir, fmt_float, workspace_root, BenchReport, BenchResult, Table,
};
pub use scale::{durability_from_env, remove_run_files, storage_backend_from_env, ExperimentScale};
