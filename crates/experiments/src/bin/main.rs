//! Command-line entry point for the experiment runners.
//!
//! ```text
//! gss-experiments <experiment> [scale]
//!
//! experiments: fig03 | fig08 | fig09 | fig10 | fig11 | fig12 | fig13 | table1 |
//!              fig14 | fig15 | ablation | model | all
//! scale:       smoke (default) | laptop | paper      (or set GSS_SCALE)
//! ```
//!
//! Every experiment prints its table(s) and writes CSV copies under `target/experiments/`.

use gss_datasets::SyntheticDataset;
use gss_experiments::figures::accuracy::run_accuracy_figure;
use gss_experiments::figures::{
    run_fig03, run_fig13, run_fig14, run_fig15, run_model_vs_measured, run_parameter_ablation,
    run_table1,
};
use gss_experiments::{emit, AccuracyFigure, ExperimentScale, Table};

fn accuracy(figure: AccuracyFigure, scale: ExperimentScale, name: &str) {
    let tables: Vec<Table> = SyntheticDataset::ALL
        .iter()
        .map(|&dataset| run_accuracy_figure(figure, dataset, scale))
        .collect();
    emit(&tables, name);
}

fn run(experiment: &str, scale: ExperimentScale) -> bool {
    match experiment {
        "fig03" => emit(&run_fig03(), "fig03_theory"),
        "fig08" => accuracy(AccuracyFigure::EdgeQueryAre, scale, "fig08_edge_query_are"),
        "fig09" => accuracy(AccuracyFigure::PrecursorPrecision, scale, "fig09_precursor_precision"),
        "fig10" => accuracy(AccuracyFigure::SuccessorPrecision, scale, "fig10_successor_precision"),
        "fig11" => accuracy(AccuracyFigure::NodeQueryAre, scale, "fig11_node_query_are"),
        "fig12" => accuracy(AccuracyFigure::ReachabilityTnr, scale, "fig12_reachability_tnr"),
        "fig13" => emit(&run_fig13(scale), "fig13_buffer_percentage"),
        "table1" => emit(&[run_table1(scale)], "table1_update_speed"),
        "fig14" => emit(&[run_fig14(scale)], "fig14_triangle_count"),
        "fig15" => emit(&[run_fig15(scale)], "fig15_subgraph_matching"),
        "ablation" => emit(&[run_parameter_ablation(scale)], "ablation_parameters"),
        "model" => emit(&[run_model_vs_measured(scale)], "ablation_model_vs_measured"),
        "all" => {
            for experiment in [
                "fig03", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "table1", "fig14",
                "fig15", "ablation", "model",
            ] {
                run(experiment, scale);
            }
        }
        _ => return false,
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiment = args.first().map(String::as_str).unwrap_or("all");
    let scale = args
        .get(1)
        .and_then(|name| ExperimentScale::parse(name))
        .unwrap_or_else(ExperimentScale::from_env);
    println!("# GSS experiment runner — experiment: {experiment}, scale: {}\n", scale.name());
    if !run(experiment, scale) {
        eprintln!(
            "unknown experiment {experiment:?}; expected one of fig03, fig08..fig15, table1, \
             ablation, model, all"
        );
        std::process::exit(2);
    }
}
