//! Crash-matrix harness: the halves of CI's kill test (`ci/crash_matrix.sh`).
//!
//! * `crash_harness ingest <sketch> <progress> <strict|buffered> <items>` — builds a
//!   file-backed sketch and feeds it a deterministic stream batch by batch, rewriting
//!   `<progress>` (atomically) with the acknowledged item count after every batch.  The
//!   driver SIGKILLs this process at a randomized offset.
//! * `crash_harness verify <sketch> <progress> <strict|buffered> <window>` — reopens the
//!   killed sketch (write-ahead-log recovery), asserts the recovered item count is no
//!   more than `<window>` items behind the last acknowledged progress (`window` is 0 for
//!   strict), regenerates the same stream and checks every recovered item's edge weight
//!   against an exact reference — GSS never under-estimates, so a lost item shows up as
//!   a missing or under-weight edge.
//! * `crash_harness ingest-threaded <sketch> <progress> strict <items>` — the
//!   multi-writer variant: [`WRITER_THREADS`] writer threads over one sharded
//!   file-backed sketch (strict durability, one shard file and write-ahead log per
//!   shard), each acknowledging its own interleaved sub-stream in `<progress>.<t>`,
//!   while a reader thread queries concurrently.  The kill lands mid-flight across
//!   several shard files and their logs at once.
//! * `crash_harness verify-threaded <sketch> <progress> strict 0` — reopens every shard
//!   (recovering each through its own log — including reclaiming the killed process's
//!   stale `.lock` sidecars), asserts the summed recovered item count covers every
//!   per-thread acknowledgement, and checks the union of the acknowledged prefixes
//!   against an exact reference.
//! * `crash_harness ingest-group <sketch> <progress> strict <items>` /
//!   `verify-group <sketch> <progress> strict 0` — the threaded mode run under a
//!   deliberately **wide** group-commit window ([`GROUP_WINDOW`]), so the randomized
//!   SIGKILL almost always lands inside an unsynced window: strict acknowledgement is
//!   `write()`-based, so even a kill mid-window must lose zero acknowledged items.
//! * `crash_harness fault-ingest <sketch> <progress> <strict|buffered> <items>` — the
//!   fault-matrix half (`ci/fault_matrix.sh`): the driver sets `GSS_FAULT_PLAN` to a
//!   randomized schedule of injected I/O faults (`EIO`, `ENOSPC`, torn writes, failed
//!   fsync — see `gss_core::pager::faults`), and ingest runs on the typed
//!   `try_insert_batch` path.  A hard fault must fail stop — sticky poison, writes
//!   rejected, reads still served — and the run writes `<progress>.fault` with the
//!   [`DurabilityReport`] numbers so the verify half knows what was promised.
//! * `crash_harness fault-verify <sketch> <progress> <strict|buffered> 0` — reopens
//!   with the schedule cleared and holds the report to its word: every item the report
//!   called durable must be recovered (acked ⇒ recovered ∨ reported breached), and the
//!   recovered prefix's edges must answer with at least their exact weights.
//!
//! Exit code 0 means the crash was survived within the documented guarantees.

use gss_core::{
    Durability, DurabilityReport, GroupCommit, GssConfig, GssError, GssSketch, ShardedGss,
    StorageBackend,
};
use gss_graph::{StreamEdge, SummaryRead, SummaryWrite};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Items per `insert_batch` call (and per progress update).
const BATCH: usize = 64;
/// Distinct vertices of the deterministic stream.
const VERTICES: u64 = 20_000;
/// Stream seed: both halves must generate identical items.
const SEED: u64 = 0xC4A5_41D5;
/// Page-cache pages: deliberately smaller than the room region so evictions (and, under
/// buffered durability, the background flusher) are exercised mid-run.
const CACHE_PAGES: usize = 64;
/// Cap on exhaustively verified distinct edges (keeps verification seconds-scale).
const VERIFY_EDGE_CAP: usize = 150_000;
/// Writer threads (= shards) of the threaded mode.
const WRITER_THREADS: usize = 3;
/// Group-commit window of the `-group` mode: wide enough (50 ms / 4 MiB) that the
/// randomized kill almost always lands *inside* an unsynced window, proving strict
/// acknowledgement never leans on the cadence `fdatasync`.
const GROUP_WINDOW: GroupCommit = GroupCommit { max_delay_us: 50_000, max_bytes: 4 * 1024 * 1024 };

fn config() -> GssConfig {
    // Small enough to overflow some edges into the left-over buffer (its recovery is
    // part of what the matrix proves), large enough to be file-I/O bound.
    GssConfig::paper_small(128)
}

/// The deterministic stream: an LCG over a fixed vertex universe with weights 1..=5.
fn stream_item(state: &mut u64, time: usize) -> StreamEdge {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    StreamEdge::new(
        (*state >> 33) % VERTICES,
        (*state >> 17) % VERTICES,
        time as u64,
        (*state % 5) as i64 + 1,
    )
}

fn parse_durability(name: &str) -> Durability {
    match name {
        "strict" => Durability::Strict,
        "buffered" => Durability::Buffered,
        other => {
            eprintln!("unknown durability {other:?} (expected strict|buffered)");
            exit(2);
        }
    }
}

/// Atomically replaces `path` with `value` (write-to-temp + rename), so a kill between
/// syscalls can never leave a torn progress file.
fn write_progress(path: &Path, value: u64) {
    let tmp = path.with_extension("tmp");
    if std::fs::write(&tmp, value.to_string()).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

fn read_progress(path: &Path) -> u64 {
    std::fs::read_to_string(path).ok().and_then(|text| text.trim().parse().ok()).unwrap_or(0)
}

fn ingest(sketch_path: &Path, progress_path: &Path, durability: Durability, items: usize) {
    let storage =
        StorageBackend::File { path: sketch_path.to_path_buf(), cache_pages: CACHE_PAGES };
    let mut sketch = GssSketch::with_storage_durability(config(), storage, durability)
        .expect("sketch file creatable");
    write_progress(progress_path, 0);
    let mut state = SEED;
    let mut produced = 0usize;
    let mut batch = Vec::with_capacity(BATCH);
    while produced < items {
        batch.clear();
        while batch.len() < BATCH && produced + batch.len() < items {
            batch.push(stream_item(&mut state, produced + batch.len()));
        }
        sketch.insert_batch(&batch);
        produced += batch.len();
        // insert_batch returned: under strict durability these items are now crash-safe,
        // so acknowledging them in the progress file is honest.
        write_progress(progress_path, produced as u64);
    }
    sketch.sync().expect("final checkpoint");
    println!("ingest completed all {produced} items (not killed)");
}

fn verify(sketch_path: &Path, progress_path: &Path, durability: Durability, window: u64) {
    let acknowledged = read_progress(progress_path);
    let sketch = match GssSketch::open_file_durability(sketch_path, CACHE_PAGES, durability) {
        Ok(sketch) => sketch,
        Err(error) if acknowledged == 0 => {
            // Killed before the sketch file finished being created: nothing was
            // acknowledged, so there is nothing to recover.
            println!("nothing acknowledged before the kill (open: {error}); vacuous pass");
            return;
        }
        Err(error) => {
            eprintln!(
                "FAIL: {acknowledged} items acknowledged but recovery failed: {error} \
                 ({})",
                sketch_path.display()
            );
            exit(1);
        }
    };
    let recovered = sketch.items_inserted();
    println!(
        "recovered {recovered} items ({acknowledged} acknowledged, window {window}, \
         {} matrix edges, {} buffered)",
        sketch.stored_edges() - sketch.buffered_edges(),
        sketch.buffered_edges()
    );
    if recovered + window < acknowledged {
        eprintln!(
            "FAIL: recovered item count {recovered} is more than {window} behind the \
             acknowledged {acknowledged}"
        );
        exit(1);
    }
    // One-sidedness of the recovered prefix: every recovered item's edge must be
    // present with at least its exact weight.
    check_prefix_weights(&sketch, recovered);
}

/// Sidecar carrying the ingest half's [`DurabilityReport`] numbers to the verify half.
fn fault_report_path(progress_path: &Path) -> PathBuf {
    let mut name = progress_path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".fault");
    progress_path.with_file_name(name)
}

fn write_fault_report(progress_path: &Path, report: &DurabilityReport) {
    let line = format!(
        "poisoned={} acked={} durable={} breached={}",
        report.poisoned as u8, report.acked_items, report.durable_items, report.breached_items
    );
    if std::fs::write(fault_report_path(progress_path), line).is_err() {
        eprintln!("FAIL: could not record the fault report");
        exit(1);
    }
}

fn read_fault_report(progress_path: &Path) -> DurabilityReport {
    let text = std::fs::read_to_string(fault_report_path(progress_path)).unwrap_or_default();
    let mut report = DurabilityReport::default();
    for field in text.split_whitespace() {
        match field.split_once('=') {
            Some(("poisoned", value)) => report.poisoned = value == "1",
            Some(("acked", value)) => report.acked_items = value.parse().unwrap_or(0),
            Some(("durable", value)) => report.durable_items = value.parse().unwrap_or(0),
            Some(("breached", value)) => report.breached_items = value.parse().unwrap_or(0),
            _ => {}
        }
    }
    report
}

/// One-sided weight check of the recovered prefix: regenerates the exact weights of
/// the stream's first `recovered` items and requires every sampled edge to answer
/// with at least its exact weight — GSS never under-estimates, so any loss shows up.
fn check_prefix_weights(sketch: &GssSketch, recovered: u64) {
    let mut state = SEED;
    let mut exact: HashMap<(u64, u64), i64> = HashMap::new();
    for time in 0..recovered as usize {
        let item = stream_item(&mut state, time);
        *exact.entry((item.source, item.destination)).or_insert(0) += item.weight;
    }
    let step = (exact.len() / VERIFY_EDGE_CAP).max(1);
    let mut checked = 0usize;
    for (index, (&(source, destination), &weight)) in exact.iter().enumerate() {
        if index % step != 0 {
            continue;
        }
        checked += 1;
        match sketch.edge_weight(source, destination) {
            Some(reported) if reported >= weight => {}
            Some(reported) => {
                eprintln!(
                    "FAIL: edge ({source}, {destination}) under-estimated after recovery: \
                     {reported} < {weight}"
                );
                exit(1);
            }
            None => {
                eprintln!(
                    "FAIL: edge ({source}, {destination}) lost after recovery (exact \
                     weight {weight})"
                );
                exit(1);
            }
        }
    }
    println!(
        "verified {checked}/{} recovered distinct edges: no loss, no under-count",
        exact.len()
    );
}

/// Fault-matrix ingest: the library picks the schedule up from `GSS_FAULT_PLAN`; this
/// half ingests on the typed fail-stop path and checks the poisoned-store contract at
/// the moment the first hard fault lands.
fn fault_ingest(sketch_path: &Path, progress_path: &Path, durability: Durability, items: usize) {
    let storage =
        StorageBackend::File { path: sketch_path.to_path_buf(), cache_pages: CACHE_PAGES };
    write_progress(progress_path, 0);
    let mut sketch = match GssSketch::with_storage_durability(config(), storage, durability) {
        Ok(sketch) => sketch,
        Err(error) => {
            // The schedule hit creation itself: nothing acknowledged, nothing durable —
            // fail-stop at birth, recorded so the verify half expects an absent store.
            write_fault_report(
                progress_path,
                &DurabilityReport { poisoned: true, ..DurabilityReport::default() },
            );
            println!("fault at creation ({error}); fail-stop at birth, nothing acknowledged");
            return;
        }
    };
    let mut state = SEED;
    let mut produced = 0usize;
    let mut batch = Vec::with_capacity(BATCH);
    let mut probe = None;
    while produced < items {
        batch.clear();
        while batch.len() < BATCH && produced + batch.len() < items {
            batch.push(stream_item(&mut state, produced + batch.len()));
        }
        match sketch.try_insert_batch(&batch) {
            Ok(()) => {
                probe.get_or_insert((batch[0].source, batch[0].destination));
                produced += batch.len();
                write_progress(progress_path, produced as u64);
            }
            Err(GssError::StoreFailed(fault)) => {
                // The poisoned-store contract, checked at the scene of the fault:
                if !sketch.is_poisoned() {
                    eprintln!("FAIL: StoreFailed ingest left the store unpoisoned");
                    exit(1);
                }
                // ...writes are rejected with the same sticky cause...
                if sketch.try_insert(1, 2, 3).is_ok() {
                    eprintln!("FAIL: poisoned store accepted a write");
                    exit(1);
                }
                // ...and reads keep serving (cache hits and degraded image reads).
                if let Some((source, destination)) = probe {
                    let _ = sketch.edge_weight(source, destination);
                }
                let report = sketch.durability_report();
                if report.durable_items > report.acked_items {
                    eprintln!("FAIL: report claims more durable than acknowledged items");
                    exit(1);
                }
                if report.breached_items != report.acked_items - report.durable_items {
                    eprintln!("FAIL: breach count disagrees with acked - durable");
                    exit(1);
                }
                let stats = sketch.detailed_stats();
                write_fault_report(progress_path, &report);
                sketch.abandon();
                println!(
                    "fail-stopped after {produced} acknowledged items: {fault} \
                     (acked {} durable {} breached {}; injected_faults {} io_retries {} \
                     store_poisoned {})",
                    report.acked_items,
                    report.durable_items,
                    report.breached_items,
                    stats.injected_faults,
                    stats.io_retries,
                    stats.store_poisoned,
                );
                return;
            }
            Err(other) => {
                eprintln!("FAIL: unexpected error class from try_insert_batch: {other}");
                exit(1);
            }
        }
    }
    // The schedule never fired mid-stream (or held only transient faults): the run
    // must finish like any healthy ingest, including the final checkpoint — but a
    // sync-shaped schedule can land exactly there, and `checkpoint` fail-stops rather
    // than panics, so a checkpoint error is a legitimate fail-stop outcome too.
    if let Err(error) = sketch.sync() {
        if !sketch.is_poisoned() {
            eprintln!("FAIL: failed final checkpoint left the store unpoisoned: {error}");
            exit(1);
        }
        let report = sketch.durability_report();
        if report.durable_items > report.acked_items
            || report.breached_items != report.acked_items - report.durable_items
        {
            eprintln!("FAIL: incoherent report after checkpoint fail-stop");
            exit(1);
        }
        let stats = sketch.detailed_stats();
        write_fault_report(progress_path, &report);
        sketch.abandon();
        println!(
            "fail-stopped at the final checkpoint after {produced} acknowledged items: \
             {error} (acked {} durable {} breached {}; injected_faults {} io_retries {} \
             store_poisoned {})",
            report.acked_items,
            report.durable_items,
            report.breached_items,
            stats.injected_faults,
            stats.io_retries,
            stats.store_poisoned,
        );
        return;
    }
    let report = sketch.durability_report();
    let stats = sketch.detailed_stats();
    write_fault_report(progress_path, &report);
    println!(
        "fault ingest completed all {produced} items (schedule unfired or transient; \
         injected_faults {} io_retries {})",
        stats.injected_faults, stats.io_retries,
    );
}

/// Fault-matrix verify: runs with the schedule cleared and holds the ingest half's
/// report to its word.
fn fault_verify(sketch_path: &Path, progress_path: &Path, durability: Durability) {
    let acknowledged = read_progress(progress_path);
    let report = read_fault_report(progress_path);
    let sketch = match GssSketch::open_file_durability(sketch_path, CACHE_PAGES, durability) {
        Ok(sketch) => sketch,
        Err(error) if report.poisoned && report.durable_items == 0 => {
            println!(
                "store unrecoverable after confessed fault with nothing durable \
                 (open: {error}); honest fail-stop"
            );
            return;
        }
        Err(error) => {
            eprintln!(
                "FAIL: {} durable items promised (poisoned={}) but recovery failed: {error}",
                report.durable_items, report.poisoned
            );
            exit(1);
        }
    };
    let recovered = sketch.items_inserted();
    println!(
        "recovered {recovered} items (report: acked {} durable {} breached {} poisoned {}; \
         progress file {acknowledged})",
        report.acked_items, report.durable_items, report.breached_items, report.poisoned,
    );
    if recovered < report.durable_items {
        eprintln!(
            "FAIL: recovered {recovered} items but the report promised {} durable",
            report.durable_items
        );
        exit(1);
    }
    if !report.poisoned && recovered < acknowledged {
        eprintln!(
            "FAIL: no fault was reported, yet {acknowledged} acknowledged items shrank \
             to {recovered}"
        );
        exit(1);
    }
    check_prefix_weights(&sketch, recovered);
}

/// Thread `t`'s sub-stream: the items of the shared stream whose time index is
/// `t (mod WRITER_THREADS)` — regenerable identically by the verify half.
fn thread_stream(thread: usize, items: usize) -> Vec<StreamEdge> {
    let mut state = SEED;
    (0..items)
        .map(|time| stream_item(&mut state, time))
        .enumerate()
        .filter(|(time, _)| time % WRITER_THREADS == thread)
        .map(|(_, item)| item)
        .collect()
}

fn thread_progress_path(progress_path: &Path, thread: usize) -> PathBuf {
    let mut name = progress_path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(format!(".{thread}"));
    progress_path.with_file_name(name)
}

fn shard_sketch_path(sketch_path: &Path, shard: usize) -> PathBuf {
    let mut name = sketch_path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(format!(".shard{shard}"));
    sketch_path.with_file_name(name)
}

fn ingest_threaded(
    sketch_path: &Path,
    progress_path: &Path,
    durability: Durability,
    items: usize,
    group_commit: GroupCommit,
) {
    if durability != Durability::Strict {
        eprintln!("threaded mode proves the strict multi-writer guarantee; use strict");
        exit(2);
    }
    let storage =
        StorageBackend::File { path: sketch_path.to_path_buf(), cache_pages: CACHE_PAGES };
    let sharded = ShardedGss::with_storage_durability_grouped(
        config(),
        WRITER_THREADS,
        &storage,
        durability,
        group_commit,
    )
    .expect("shard files creatable");
    let done = Arc::new(AtomicBool::new(false));
    let reader = {
        let sharded = sharded.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            // Concurrent queries while the writers run (and while the kill lands): the
            // reader must never deadlock, panic, or see malformed answers.
            let mut vertex = 0u64;
            // relaxed: plain stop flag; reading it one iteration late is harmless.
            while !done.load(Ordering::Relaxed) {
                let successors = sharded.successors(vertex % VERTICES);
                assert!(successors.windows(2).all(|w| w[0] < w[1]));
                vertex += 1;
            }
        })
    };
    let writers: Vec<_> = (0..WRITER_THREADS)
        .map(|t| {
            let sharded = sharded.clone();
            let progress = thread_progress_path(progress_path, t);
            let stream = thread_stream(t, items);
            std::thread::spawn(move || {
                write_progress(&progress, 0);
                for (index, batch) in stream.chunks(BATCH).enumerate() {
                    sharded.insert_batch(batch);
                    // Strict: the batch is durable across every shard it touched.
                    write_progress(&progress, (index * BATCH + batch.len()) as u64);
                }
            })
        })
        .collect();
    for writer in writers {
        writer.join().expect("writer thread");
    }
    // relaxed: same stop flag; the join below is the actual synchronization point.
    done.store(true, Ordering::Relaxed);
    reader.join().expect("reader thread");
    sharded.sync().expect("final checkpoint");
    println!("threaded ingest completed all {items} items (not killed)");
}

fn verify_threaded(sketch_path: &Path, progress_path: &Path, durability: Durability, window: u64) {
    let acknowledged: Vec<u64> = (0..WRITER_THREADS)
        .map(|t| read_progress(&thread_progress_path(progress_path, t)))
        .collect();
    let total_acknowledged: u64 = acknowledged.iter().sum();
    let mut shards = Vec::new();
    for shard in 0..WRITER_THREADS {
        match GssSketch::open_file_durability(
            shard_sketch_path(sketch_path, shard),
            CACHE_PAGES,
            durability,
        ) {
            Ok(sketch) => shards.push(sketch),
            Err(error) if total_acknowledged == 0 => {
                println!("nothing acknowledged before the kill (open: {error}); vacuous pass");
                return;
            }
            Err(error) => {
                eprintln!(
                    "FAIL: {total_acknowledged} items acknowledged but shard {shard} failed to \
                     recover: {error}"
                );
                exit(1);
            }
        }
    }
    let recovered: u64 = shards.iter().map(GssSketch::items_inserted).sum();
    println!(
        "recovered {recovered} items across {WRITER_THREADS} shards \
         ({total_acknowledged} acknowledged: {acknowledged:?})"
    );
    if recovered + window < total_acknowledged {
        eprintln!(
            "FAIL: recovered item count {recovered} is more than {window} behind the \
             acknowledged {total_acknowledged}"
        );
        exit(1);
    }
    // Union of the per-thread acknowledged prefixes: every one of these items was
    // durable when its writer's progress write happened, so each edge must answer with
    // at least the union's exact weight (one-sided error permits only over-counting).
    let mut exact: HashMap<(u64, u64), i64> = HashMap::new();
    for (t, &count) in acknowledged.iter().enumerate() {
        // Regenerate enough of the shared stream to cover this thread's first `count`
        // items, then take exactly the acknowledged prefix.
        let horizon = count as usize * WRITER_THREADS + WRITER_THREADS;
        for item in thread_stream(t, horizon).into_iter().take(count as usize) {
            *exact.entry((item.source, item.destination)).or_insert(0) += item.weight;
        }
    }
    let lookup = |source: u64, destination: u64| {
        shards
            .iter()
            .filter_map(|shard| shard.edge_weight(source, destination))
            .reduce(|a, b| a + b)
    };
    let step = (exact.len() / VERIFY_EDGE_CAP).max(1);
    let mut checked = 0usize;
    for (index, (&(source, destination), &weight)) in exact.iter().enumerate() {
        if index % step != 0 {
            continue;
        }
        checked += 1;
        match lookup(source, destination) {
            Some(reported) if reported >= weight => {}
            Some(reported) => {
                eprintln!(
                    "FAIL: edge ({source}, {destination}) under-estimated after threaded \
                     recovery: {reported} < {weight}"
                );
                exit(1);
            }
            None => {
                eprintln!(
                    "FAIL: edge ({source}, {destination}) lost after threaded recovery \
                     (exact weight {weight})"
                );
                exit(1);
            }
        }
    }
    println!(
        "verified {checked}/{} acknowledged distinct edges across shards: no loss, no \
         under-count",
        exact.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("ingest") if args.len() == 6 => {
            let items: usize = args[5].parse().expect("items must be a number");
            ingest(
                &PathBuf::from(&args[2]),
                &PathBuf::from(&args[3]),
                parse_durability(&args[4]),
                items,
            );
        }
        Some("verify") if args.len() == 6 => {
            let window: u64 = args[5].parse().expect("window must be a number");
            verify(
                &PathBuf::from(&args[2]),
                &PathBuf::from(&args[3]),
                parse_durability(&args[4]),
                window,
            );
        }
        Some("ingest-threaded") if args.len() == 6 => {
            let items: usize = args[5].parse().expect("items must be a number");
            ingest_threaded(
                &PathBuf::from(&args[2]),
                &PathBuf::from(&args[3]),
                parse_durability(&args[4]),
                items,
                GroupCommit::default(),
            );
        }
        Some("ingest-group") if args.len() == 6 => {
            let items: usize = args[5].parse().expect("items must be a number");
            ingest_threaded(
                &PathBuf::from(&args[2]),
                &PathBuf::from(&args[3]),
                parse_durability(&args[4]),
                items,
                GROUP_WINDOW,
            );
        }
        Some("verify-threaded" | "verify-group") if args.len() == 6 => {
            let window: u64 = args[5].parse().expect("window must be a number");
            verify_threaded(
                &PathBuf::from(&args[2]),
                &PathBuf::from(&args[3]),
                parse_durability(&args[4]),
                window,
            );
        }
        Some("fault-ingest") if args.len() == 6 => {
            let items: usize = args[5].parse().expect("items must be a number");
            fault_ingest(
                &PathBuf::from(&args[2]),
                &PathBuf::from(&args[3]),
                parse_durability(&args[4]),
                items,
            );
        }
        Some("fault-verify") if args.len() == 6 => {
            fault_verify(
                &PathBuf::from(&args[2]),
                &PathBuf::from(&args[3]),
                parse_durability(&args[4]),
            );
        }
        _ => {
            eprintln!(
                "usage: crash_harness ingest <sketch> <progress> <strict|buffered> <items>\n\
                 \x20      crash_harness verify <sketch> <progress> <strict|buffered> <window>\n\
                 \x20      crash_harness ingest-threaded <sketch> <progress> strict <items>\n\
                 \x20      crash_harness verify-threaded <sketch> <progress> strict 0\n\
                 \x20      crash_harness ingest-group <sketch> <progress> strict <items>\n\
                 \x20      crash_harness verify-group <sketch> <progress> strict 0\n\
                 \x20      crash_harness fault-ingest <sketch> <progress> <strict|buffered> \
                 <items>   (schedule from GSS_FAULT_PLAN)\n\
                 \x20      crash_harness fault-verify <sketch> <progress> <strict|buffered> 0"
            );
            exit(2);
        }
    }
}
