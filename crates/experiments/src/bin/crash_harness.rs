//! Crash-matrix harness: the two halves of CI's kill test (`ci/crash_matrix.sh`).
//!
//! * `crash_harness ingest <sketch> <progress> <strict|buffered> <items>` — builds a
//!   file-backed sketch and feeds it a deterministic stream batch by batch, rewriting
//!   `<progress>` (atomically) with the acknowledged item count after every batch.  The
//!   driver SIGKILLs this process at a randomized offset.
//! * `crash_harness verify <sketch> <progress> <strict|buffered> <window>` — reopens the
//!   killed sketch (write-ahead-log recovery), asserts the recovered item count is no
//!   more than `<window>` items behind the last acknowledged progress (`window` is 0 for
//!   strict), regenerates the same stream and checks every recovered item's edge weight
//!   against an exact reference — GSS never under-estimates, so a lost item shows up as
//!   a missing or under-weight edge.
//!
//! Exit code 0 means the crash was survived within the documented guarantees.

use gss_core::{Durability, GssConfig, GssSketch, StorageBackend};
use gss_graph::{StreamEdge, SummaryRead, SummaryWrite};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::exit;

/// Items per `insert_batch` call (and per progress update).
const BATCH: usize = 64;
/// Distinct vertices of the deterministic stream.
const VERTICES: u64 = 20_000;
/// Stream seed: both halves must generate identical items.
const SEED: u64 = 0xC4A5_41D5;
/// Page-cache pages: deliberately smaller than the room region so evictions (and, under
/// buffered durability, the background flusher) are exercised mid-run.
const CACHE_PAGES: usize = 64;
/// Cap on exhaustively verified distinct edges (keeps verification seconds-scale).
const VERIFY_EDGE_CAP: usize = 150_000;

fn config() -> GssConfig {
    // Small enough to overflow some edges into the left-over buffer (its recovery is
    // part of what the matrix proves), large enough to be file-I/O bound.
    GssConfig::paper_small(128)
}

/// The deterministic stream: an LCG over a fixed vertex universe with weights 1..=5.
fn stream_item(state: &mut u64, time: usize) -> StreamEdge {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    StreamEdge::new(
        (*state >> 33) % VERTICES,
        (*state >> 17) % VERTICES,
        time as u64,
        (*state % 5) as i64 + 1,
    )
}

fn parse_durability(name: &str) -> Durability {
    match name {
        "strict" => Durability::Strict,
        "buffered" => Durability::Buffered,
        other => {
            eprintln!("unknown durability {other:?} (expected strict|buffered)");
            exit(2);
        }
    }
}

/// Atomically replaces `path` with `value` (write-to-temp + rename), so a kill between
/// syscalls can never leave a torn progress file.
fn write_progress(path: &Path, value: u64) {
    let tmp = path.with_extension("tmp");
    if std::fs::write(&tmp, value.to_string()).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

fn read_progress(path: &Path) -> u64 {
    std::fs::read_to_string(path).ok().and_then(|text| text.trim().parse().ok()).unwrap_or(0)
}

fn ingest(sketch_path: &Path, progress_path: &Path, durability: Durability, items: usize) {
    let storage =
        StorageBackend::File { path: sketch_path.to_path_buf(), cache_pages: CACHE_PAGES };
    let mut sketch = GssSketch::with_storage_durability(config(), storage, durability)
        .expect("sketch file creatable");
    write_progress(progress_path, 0);
    let mut state = SEED;
    let mut produced = 0usize;
    let mut batch = Vec::with_capacity(BATCH);
    while produced < items {
        batch.clear();
        while batch.len() < BATCH && produced + batch.len() < items {
            batch.push(stream_item(&mut state, produced + batch.len()));
        }
        sketch.insert_batch(&batch);
        produced += batch.len();
        // insert_batch returned: under strict durability these items are now crash-safe,
        // so acknowledging them in the progress file is honest.
        write_progress(progress_path, produced as u64);
    }
    sketch.sync().expect("final checkpoint");
    println!("ingest completed all {produced} items (not killed)");
}

fn verify(sketch_path: &Path, progress_path: &Path, durability: Durability, window: u64) {
    let acknowledged = read_progress(progress_path);
    let sketch = match GssSketch::open_file_durability(sketch_path, CACHE_PAGES, durability) {
        Ok(sketch) => sketch,
        Err(error) if acknowledged == 0 => {
            // Killed before the sketch file finished being created: nothing was
            // acknowledged, so there is nothing to recover.
            println!("nothing acknowledged before the kill (open: {error}); vacuous pass");
            return;
        }
        Err(error) => {
            eprintln!(
                "FAIL: {acknowledged} items acknowledged but recovery failed: {error} \
                 ({})",
                sketch_path.display()
            );
            exit(1);
        }
    };
    let recovered = sketch.items_inserted();
    println!(
        "recovered {recovered} items ({acknowledged} acknowledged, window {window}, \
         {} matrix edges, {} buffered)",
        sketch.stored_edges() - sketch.buffered_edges(),
        sketch.buffered_edges()
    );
    if recovered + window < acknowledged {
        eprintln!(
            "FAIL: recovered item count {recovered} is more than {window} behind the \
             acknowledged {acknowledged}"
        );
        exit(1);
    }
    // Rebuild the exact weights of the recovered prefix and check one-sidedness: every
    // recovered item's edge must be present with at least its exact weight.
    let mut state = SEED;
    let mut exact: HashMap<(u64, u64), i64> = HashMap::new();
    for time in 0..recovered as usize {
        let item = stream_item(&mut state, time);
        *exact.entry((item.source, item.destination)).or_insert(0) += item.weight;
    }
    let step = (exact.len() / VERIFY_EDGE_CAP).max(1);
    let mut checked = 0usize;
    for (index, (&(source, destination), &weight)) in exact.iter().enumerate() {
        if index % step != 0 {
            continue;
        }
        checked += 1;
        match sketch.edge_weight(source, destination) {
            Some(reported) if reported >= weight => {}
            Some(reported) => {
                eprintln!(
                    "FAIL: edge ({source}, {destination}) under-estimated after recovery: \
                     {reported} < {weight}"
                );
                exit(1);
            }
            None => {
                eprintln!(
                    "FAIL: edge ({source}, {destination}) lost after recovery (exact \
                     weight {weight})"
                );
                exit(1);
            }
        }
    }
    println!(
        "verified {checked}/{} recovered distinct edges: no loss, no under-count",
        exact.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("ingest") if args.len() == 6 => {
            let items: usize = args[5].parse().expect("items must be a number");
            ingest(
                &PathBuf::from(&args[2]),
                &PathBuf::from(&args[3]),
                parse_durability(&args[4]),
                items,
            );
        }
        Some("verify") if args.len() == 6 => {
            let window: u64 = args[5].parse().expect("window must be a number");
            verify(
                &PathBuf::from(&args[2]),
                &PathBuf::from(&args[3]),
                parse_durability(&args[4]),
                window,
            );
        }
        _ => {
            eprintln!(
                "usage: crash_harness ingest <sketch> <progress> <strict|buffered> <items>\n\
                 \x20      crash_harness verify <sketch> <progress> <strict|buffered> <window>"
            );
            exit(2);
        }
    }
}
