//! Evaluation metrics (Section VII-B of the paper).
//!
//! * **Average Relative Error (ARE)** — for edge and node queries:
//!   `RE(q) = f̂(q)/f(q) − 1`, averaged over a query set.
//! * **Average Precision** — for 1-hop successor/precursor queries and pattern matching:
//!   `|SS| / |ŜS|` where `SS` is the true answer set and `ŜS ⊇ SS` the reported one.
//! * **True Negative Recall** — for reachability queries over pairs known to be
//!   unreachable: the fraction reported as unreachable.
//! * **Buffer Percentage** — buffered edges over all stored edges (GSS only).
//! * **Mips** — million insertions per second, for Table I.

use gss_graph::{VertexId, Weight};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Relative error of one estimate against the exact value.
///
/// Queries with a true value of zero are skipped by the averaging helpers (relative error is
/// undefined there), matching the paper's use of edges/nodes that exist in the stream.
pub fn relative_error(estimate: Weight, truth: Weight) -> Option<f64> {
    if truth == 0 {
        None
    } else {
        Some(estimate as f64 / truth as f64 - 1.0)
    }
}

/// Average relative error over `(estimate, truth)` pairs, skipping zero-truth entries.
pub fn average_relative_error(pairs: &[(Weight, Weight)]) -> f64 {
    let errors: Vec<f64> =
        pairs.iter().filter_map(|&(estimate, truth)| relative_error(estimate, truth)).collect();
    if errors.is_empty() {
        0.0
    } else {
        errors.iter().sum::<f64>() / errors.len() as f64
    }
}

/// Precision of one reported set against the true set: `|SS ∩ ŜS| / |ŜS|`.
///
/// An empty reported set has precision 1 if the true set is also empty, else 0.
pub fn set_precision(truth: &[VertexId], reported: &[VertexId]) -> f64 {
    if reported.is_empty() {
        return if truth.is_empty() { 1.0 } else { 0.0 };
    }
    let truth_set: HashSet<VertexId> = truth.iter().copied().collect();
    let hits = reported.iter().filter(|v| truth_set.contains(v)).count();
    hits as f64 / reported.len() as f64
}

/// Recall of one reported set against the true set: `|SS ∩ ŜS| / |SS|` (1 for empty truth).
pub fn set_recall(truth: &[VertexId], reported: &[VertexId]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let reported_set: HashSet<VertexId> = reported.iter().copied().collect();
    let hits = truth.iter().filter(|v| reported_set.contains(v)).count();
    hits as f64 / truth.len() as f64
}

/// Mean of a slice of precisions (or any per-query scores); 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// True-negative recall: of `total` queries known to be negative, `reported_negative` were
/// answered negatively.
pub fn true_negative_recall(reported_negative: usize, total: usize) -> f64 {
    if total == 0 {
        1.0
    } else {
        reported_negative as f64 / total as f64
    }
}

/// Million insertions per second.
pub fn mips(items: u64, elapsed_seconds: f64) -> f64 {
    if elapsed_seconds <= 0.0 {
        0.0
    } else {
        items as f64 / elapsed_seconds / 1e6
    }
}

/// Summary statistics (mean / min / max) of a set of per-query scores, reported alongside
/// the headline averages in experiment output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoreSummary {
    /// Mean score.
    pub mean: f64,
    /// Minimum score.
    pub min: f64,
    /// Maximum score.
    pub max: f64,
    /// Number of queries.
    pub count: usize,
}

impl ScoreSummary {
    /// Summarises a slice of scores.
    pub fn from_scores(scores: &[f64]) -> Self {
        if scores.is_empty() {
            return Self { mean: 0.0, min: 0.0, max: 0.0, count: 0 };
        }
        Self {
            mean: mean(scores),
            min: scores.iter().copied().fold(f64::INFINITY, f64::min),
            max: scores.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            count: scores.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_matches_definition() {
        assert_eq!(relative_error(15, 10), Some(0.5));
        assert_eq!(relative_error(10, 10), Some(0.0));
        assert_eq!(relative_error(5, 0), None);
    }

    #[test]
    fn are_skips_zero_truth_and_averages_the_rest() {
        let pairs = vec![(15, 10), (10, 10), (7, 0)];
        assert!((average_relative_error(&pairs) - 0.25).abs() < 1e-12);
        assert_eq!(average_relative_error(&[]), 0.0);
        assert_eq!(average_relative_error(&[(3, 0)]), 0.0);
    }

    #[test]
    fn precision_counts_false_positives() {
        assert_eq!(set_precision(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(set_precision(&[1, 2], &[1, 2, 3, 4]), 0.5);
        assert_eq!(set_precision(&[], &[]), 1.0);
        assert_eq!(set_precision(&[], &[7]), 0.0);
        assert_eq!(set_precision(&[7], &[]), 0.0);
    }

    #[test]
    fn recall_counts_false_negatives() {
        assert_eq!(set_recall(&[1, 2], &[1, 2, 3]), 1.0);
        assert_eq!(set_recall(&[1, 2, 3, 4], &[1, 2]), 0.5);
        assert_eq!(set_recall(&[], &[1]), 1.0);
    }

    #[test]
    fn tnr_and_mips_handle_degenerate_inputs() {
        assert_eq!(true_negative_recall(80, 100), 0.8);
        assert_eq!(true_negative_recall(0, 0), 1.0);
        assert_eq!(mips(2_000_000, 1.0), 2.0);
        assert_eq!(mips(100, 0.0), 0.0);
    }

    #[test]
    fn score_summary_reports_extremes() {
        let summary = ScoreSummary::from_scores(&[0.5, 1.0, 0.75]);
        assert!((summary.mean - 0.75).abs() < 1e-12);
        assert_eq!(summary.min, 0.5);
        assert_eq!(summary.max, 1.0);
        assert_eq!(summary.count, 3);
        let empty = ScoreSummary::from_scores(&[]);
        assert_eq!(empty.count, 0);
    }

    #[test]
    fn mean_of_empty_slice_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
