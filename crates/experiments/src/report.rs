//! Result tables: formatting, printing and CSV export.
//!
//! Every figure/table runner returns a [`Table`] with the same x/y series the paper plots;
//! the bench harness prints it and writes a CSV copy under `target/experiments/`.

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// A simple result table with a title, column headers and string cells.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. `"Fig 8(a): edge query ARE — email-EuAll"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each row has one cell per header.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of cells.
    ///
    /// # Panics
    /// Panics if the row length does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width must match header count");
        self.rows.push(cells);
    }

    /// Convenience: appends a row of displayable values.
    pub fn push_display_row<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table as aligned ASCII text.
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        let format_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, cell)| format!("{:<width$}", cell, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&format_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.to_ascii());
    }

    /// Writes the table as `<name>.csv` inside `directory`, creating it if needed.
    pub fn write_csv(&self, directory: &Path, name: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(directory)?;
        let path = directory.join(format!("{name}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// The workspace root: the nearest ancestor of the current directory holding a
/// `Cargo.lock` (falling back to the current directory itself).
///
/// Benches and per-crate tests run with the crate directory as CWD, so bare relative
/// paths would scatter outputs around the workspace; anchoring here keeps every writer on
/// the same path.
pub fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// The default output directory for experiment CSVs: `target/experiments/` under the
/// workspace root.
pub fn experiments_dir() -> PathBuf {
    if let Ok(target) = std::env::var("CARGO_TARGET_DIR") {
        return Path::new(&target).join("experiments");
    }
    workspace_root().join("target").join("experiments")
}

/// A machine-readable benchmark report, written as `BENCH_<name>.json` at the workspace
/// root so throughput numbers accumulate as a trajectory alongside the code.
///
/// The JSON is hand-rolled (the vendored `serde` shim has no real serialisation): an
/// object with the bench name, free-form string context (scale, machine, stream shape) and
/// one object per measurement holding a name plus numeric fields.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    /// Bench name, e.g. `"ingest"`; the output file is `BENCH_<name>.json`.
    pub bench: String,
    /// Free-form string context (`scale`, `items`, …), serialised as a JSON object.
    pub context: Vec<(String, String)>,
    /// One entry per measurement.
    pub results: Vec<BenchResult>,
}

/// One measurement of a [`BenchReport`]: a name plus numeric fields
/// (`{"name": "sharded", "threads": 4, "mitems_per_sec": 12.3}`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchResult {
    /// Measurement name (structure/configuration under test).
    pub name: String,
    /// Numeric fields (thread counts, seconds, derived rates).
    pub fields: Vec<(String, f64)>,
}

impl BenchReport {
    /// Creates an empty report for `bench`.
    pub fn new(bench: impl Into<String>) -> Self {
        Self { bench: bench.into(), context: Vec::new(), results: Vec::new() }
    }

    /// Appends a context key/value pair.
    pub fn context(mut self, key: impl Into<String>, value: impl std::fmt::Display) -> Self {
        self.context.push((key.into(), value.to_string()));
        self
    }

    /// Appends one measurement.
    pub fn push(&mut self, name: impl Into<String>, fields: &[(&str, f64)]) {
        self.results.push(BenchResult {
            name: name.into(),
            fields: fields.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        });
    }

    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        fn escape(text: &str) -> String {
            let mut out = String::with_capacity(text.len());
            for c in text.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn number(value: f64) -> String {
            if value.is_finite() {
                format!("{value:.6}")
            } else {
                "null".to_string() // JSON has no NaN/Inf
            }
        }
        let mut out = String::new();
        out.push_str(&format!("{{\n  \"bench\": \"{}\",\n", escape(&self.bench)));
        out.push_str("  \"context\": {");
        for (index, (key, value)) in self.context.iter().enumerate() {
            let comma = if index == 0 { "" } else { "," };
            out.push_str(&format!("{comma}\n    \"{}\": \"{}\"", escape(key), escape(value)));
        }
        out.push_str(if self.context.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"results\": [");
        for (index, result) in self.results.iter().enumerate() {
            let comma = if index == 0 { "" } else { "," };
            out.push_str(&format!("{comma}\n    {{\"name\": \"{}\"", escape(&result.name)));
            for (key, value) in &result.fields {
                out.push_str(&format!(", \"{}\": {}", escape(key), number(*value)));
            }
            out.push('}');
        }
        out.push_str(if self.results.is_empty() { "]\n}\n" } else { "\n  ]\n}\n" });
        out
    }

    /// Writes the report as `BENCH_<bench>.json` at the workspace root and returns the
    /// path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = workspace_root().join(format!("BENCH_{}.json", self.bench));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Prints each table and writes it as CSV under [`experiments_dir`].
///
/// `name` is the CSV base name; multiple tables get `_0`, `_1`, … suffixes.
pub fn emit(tables: &[Table], name: &str) {
    let dir = experiments_dir();
    for (index, table) in tables.iter().enumerate() {
        table.print();
        let file = if tables.len() == 1 { name.to_string() } else { format!("{name}_{index}") };
        match table.write_csv(&dir, &file) {
            Ok(path) => println!("(csv written to {})\n", path.display()),
            Err(error) => eprintln!("warning: could not write csv for {file}: {error}\n"),
        }
    }
}

/// Formats a float with enough precision for the metrics in this workspace.
pub fn fmt_float(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() >= 100.0 {
        format!("{value:.2}")
    } else {
        format!("{value:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut table = Table::new("Fig X", &["width", "gss", "tcm"]);
        table.push_display_row(&["600", "0.001", "0.5"]);
        table.push_row(vec!["700".into(), "0.0005".into(), "0.4".into()]);
        table
    }

    #[test]
    fn ascii_rendering_contains_all_cells() {
        let text = sample_table().to_ascii();
        assert!(text.contains("Fig X"));
        assert!(text.contains("width"));
        assert!(text.contains("0.0005"));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn csv_rendering_escapes_commas() {
        let mut table = Table::new("t", &["a", "b"]);
        table.push_row(vec!["x,y".into(), "plain".into()]);
        let csv = table.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    #[should_panic(expected = "row width must match")]
    fn mismatched_row_panics() {
        let mut table = Table::new("t", &["a", "b"]);
        table.push_row(vec!["only one".into()]);
    }

    #[test]
    fn csv_round_trips_to_disk() {
        let dir = std::env::temp_dir().join("gss-report-test");
        let path = sample_table().write_csv(&dir, "fig_x").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("width,gss,tcm"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn float_formatting_is_compact() {
        assert_eq!(fmt_float(0.0), "0");
        assert_eq!(fmt_float(123.456), "123.46");
        assert_eq!(fmt_float(0.000123), "0.000123");
    }

    #[test]
    fn experiments_dir_ends_with_experiments() {
        assert!(experiments_dir().ends_with("experiments"));
    }

    #[test]
    fn bench_report_renders_valid_json() {
        let mut report = BenchReport::new("unit_test").context("scale", "smoke");
        report.push("sharded", &[("threads", 4.0), ("mitems_per_sec", 1.25)]);
        report.push(r#"quo"te"#, &[("nan", f64::NAN)]);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"unit_test\""));
        assert!(json.contains("\"scale\": \"smoke\""));
        assert!(json.contains("\"threads\": 4.000000"));
        assert!(json.contains("\"mitems_per_sec\": 1.250000"));
        assert!(json.contains(r#"\"te"#)); // quote escaped
        assert!(json.contains("\"nan\": null"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn bench_report_round_trips_to_disk() {
        let report = BenchReport::new("report_unit_test");
        let path = report.write().unwrap();
        assert!(path.file_name().unwrap().to_str().unwrap() == "BENCH_report_unit_test.json");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"results\": []"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn workspace_root_holds_the_lockfile() {
        assert!(workspace_root().join("Cargo.lock").exists());
    }
}
