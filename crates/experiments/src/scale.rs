//! Experiment scale selection.
//!
//! The paper runs on a 62 GB server; this reproduction must also run on a laptop and inside
//! CI.  Every experiment therefore accepts a scale:
//!
//! * [`ExperimentScale::Smoke`] — heavily reduced datasets (~1/32 of laptop scale) and
//!   sampled query sets.  This is the default for `cargo bench` and finishes in minutes.
//! * [`ExperimentScale::Laptop`] — the paper's dataset sizes (CAIDA scaled to 1/64) and
//!   larger query samples.  Expect tens of minutes and a few GB of memory.
//! * [`ExperimentScale::Paper`] — the paper's full sizes and memory ratios; only sensible on
//!   a large-memory server.
//!
//! The scale is picked from the `GSS_SCALE` environment variable (`smoke`, `laptop`,
//! `paper`) so the same bench binaries serve all three.
//!
//! Orthogonally, `GSS_STORAGE` (`memory` — default, `file`) selects the room-storage
//! backend experiment sketches are built on ([`storage_backend_from_env`]): `file` routes
//! every sketch through the paged [`gss_core::FileStore`] so paper-scale matrices that
//! exceed RAM still run, at the cost of page-cache I/O on the hot path.  With the file
//! backend, `GSS_DURABILITY` (`strict` — default, `buffered`) selects the write-ahead
//! logging / page write-back policy ([`durability_from_env`]).

use gss_core::{Durability, StorageBackend};
use gss_datasets::{DatasetProfile, SyntheticDataset};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// How big an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ExperimentScale {
    /// Minutes-scale run with reduced datasets and sampled query sets (default).
    #[default]
    Smoke,
    /// The paper's dataset sizes (CAIDA reduced), larger query samples.
    Laptop,
    /// Full paper setup; requires a large-memory server.
    Paper,
}

impl ExperimentScale {
    /// Reads the scale from the `GSS_SCALE` environment variable, defaulting to `Smoke`.
    pub fn from_env() -> Self {
        match std::env::var("GSS_SCALE").unwrap_or_default().to_ascii_lowercase().as_str() {
            "laptop" => Self::Laptop,
            "paper" => Self::Paper,
            _ => Self::Smoke,
        }
    }

    /// Parses a scale name (used by the CLI).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "smoke" => Some(Self::Smoke),
            "laptop" => Some(Self::Laptop),
            "paper" => Some(Self::Paper),
            _ => None,
        }
    }

    /// The dataset profile to generate for this scale.
    pub fn profile(self, dataset: SyntheticDataset) -> DatasetProfile {
        match self {
            Self::Smoke => dataset.smoke_profile(),
            Self::Laptop => dataset.laptop_profile(),
            Self::Paper => dataset.paper_profile(),
        }
    }

    /// Maximum number of queries sampled per query set (the paper queries *all* edges and
    /// nodes; at smoke/laptop scale a uniform sample keeps runtimes reasonable while leaving
    /// the averaged metrics unchanged in expectation).
    pub fn query_sample(self) -> usize {
        match self {
            Self::Smoke => 500,
            Self::Laptop => 2_000,
            Self::Paper => usize::MAX,
        }
    }

    /// The TCM memory ratio used for the topology-query figures (256× in the paper, capped
    /// at smaller ratios on reduced scales so the TCM matrices stay allocatable).
    pub fn tcm_topology_ratio(self) -> f64 {
        match self {
            Self::Smoke => 16.0,
            Self::Laptop => 64.0,
            Self::Paper => 256.0,
        }
    }

    /// The TCM memory ratio used for the edge-query figure (8× in the paper).
    pub fn tcm_edge_ratio(self) -> f64 {
        8.0
    }

    /// How many matrix widths of the paper's sweep to evaluate (smoke runs take a subset to
    /// bound runtime; the subset keeps the first, middle and last widths so trends remain
    /// visible).
    pub fn width_subset(self, widths: &[usize]) -> Vec<usize> {
        match self {
            Self::Smoke => {
                if widths.len() <= 3 {
                    widths.to_vec()
                } else {
                    vec![widths[0], widths[widths.len() / 2], widths[widths.len() - 1]]
                }
            }
            _ => widths.to_vec(),
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Smoke => "smoke",
            Self::Laptop => "laptop",
            Self::Paper => "paper",
        }
    }

    /// Page-cache budget for file-backed sketches at this scale (pages of 4 KiB).
    pub fn file_cache_pages(self) -> usize {
        match self {
            Self::Smoke => 256,    // 1 MiB
            Self::Laptop => 4096,  // 16 MiB
            Self::Paper => 65_536, // 256 MiB — far below a paper-scale matrix
        }
    }
}

/// Distinguishes the sketch files of concurrent/consecutive experiment runs.
static STORAGE_SEQUENCE: AtomicU64 = AtomicU64::new(0);

/// The storage backend experiment sketches are built on, from the `GSS_STORAGE`
/// environment variable: `memory` (default) or `file`.
///
/// With `file`, each call yields a fresh sketch-file path under
/// `<tmp>/gss-experiments/`, tagged with `label`, the process id and a sequence number so
/// concurrent runs and repeated builds never collide; the cache budget follows
/// [`ExperimentScale::file_cache_pages`].  Files are left behind for post-run inspection
/// (they live in the temp dir, so the OS reclaims them).
pub fn storage_backend_from_env(scale: ExperimentScale, label: &str) -> StorageBackend {
    match std::env::var("GSS_STORAGE").unwrap_or_default().to_ascii_lowercase().as_str() {
        "file" => {
            let dir = std::env::temp_dir().join("gss-experiments");
            let _ = std::fs::create_dir_all(&dir);
            // relaxed: a process-unique counter; only atomicity matters, not ordering.
            let sequence = STORAGE_SEQUENCE.fetch_add(1, Ordering::Relaxed);
            // Keep the label filesystem-safe.
            let label: String = label
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() || c == '-' { c } else { '_' })
                .collect();
            StorageBackend::File {
                path: dir.join(format!("{label}-{}-{sequence}.gss", std::process::id())),
                cache_pages: scale.file_cache_pages(),
            }
        }
        _ => StorageBackend::Memory,
    }
}

/// Deletes the sketch and write-ahead-log files a finished [`StorageBackend::File`] run
/// left behind: the base path plus every `.shardN` / `.wal` sibling that shares its file
/// name.  A no-op for [`StorageBackend::Memory`].
///
/// Benches call this between repeats.  Unlinking a closed file discards its dirty pages,
/// so megabytes of write-back from completed configurations stop queueing behind the
/// later (higher-thread-count) points of a sweep and skewing the tail of the curve.
pub fn remove_run_files(storage: &StorageBackend) {
    let StorageBackend::File { path, .. } = storage else { return };
    let (Some(dir), Some(name)) = (path.parent(), path.file_name().and_then(|n| n.to_str())) else {
        return;
    };
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        if entry.file_name().to_string_lossy().starts_with(name) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// The durability policy file-backed experiment sketches run under, from the
/// `GSS_DURABILITY` environment variable: `strict` (default) or `buffered`.  Ignored by
/// in-memory sketches, so it composes freely with `GSS_STORAGE`.
pub fn durability_from_env() -> Durability {
    match std::env::var("GSS_DURABILITY").unwrap_or_default().to_ascii_lowercase().as_str() {
        "buffered" => Durability::Buffered,
        _ => Durability::Strict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durability_env_defaults_to_strict() {
        // The test environment does not set GSS_DURABILITY (and if it ever does, the
        // call still returns one of the two valid policies).
        assert!(matches!(durability_from_env(), Durability::Strict | Durability::Buffered));
    }

    #[test]
    fn parse_accepts_known_names_case_insensitively() {
        assert_eq!(ExperimentScale::parse("smoke"), Some(ExperimentScale::Smoke));
        assert_eq!(ExperimentScale::parse("LAPTOP"), Some(ExperimentScale::Laptop));
        assert_eq!(ExperimentScale::parse("Paper"), Some(ExperimentScale::Paper));
        assert_eq!(ExperimentScale::parse("huge"), None);
    }

    #[test]
    fn profiles_grow_with_scale() {
        let smoke = ExperimentScale::Smoke.profile(SyntheticDataset::WebNotreDame);
        let laptop = ExperimentScale::Laptop.profile(SyntheticDataset::WebNotreDame);
        let paper = ExperimentScale::Paper.profile(SyntheticDataset::WebNotreDame);
        assert!(smoke.stream_items <= laptop.stream_items);
        assert!(laptop.stream_items <= paper.stream_items);
    }

    #[test]
    fn query_samples_and_ratios_are_ordered() {
        assert!(ExperimentScale::Smoke.query_sample() < ExperimentScale::Laptop.query_sample());
        assert!(
            ExperimentScale::Smoke.tcm_topology_ratio()
                < ExperimentScale::Paper.tcm_topology_ratio()
        );
        assert_eq!(ExperimentScale::Paper.tcm_edge_ratio(), 8.0);
    }

    #[test]
    fn width_subset_keeps_endpoints() {
        let widths = vec![600, 650, 700, 750, 800, 850, 900, 950, 1000];
        let subset = ExperimentScale::Smoke.width_subset(&widths);
        assert_eq!(subset, vec![600, 800, 1000]);
        assert_eq!(ExperimentScale::Laptop.width_subset(&widths), widths);
        assert_eq!(ExperimentScale::Smoke.width_subset(&[1, 2]), vec![1, 2]);
    }

    #[test]
    fn storage_backend_defaults_to_memory_and_caches_scale_with_size() {
        // The test environment does not set GSS_STORAGE (and if it ever does, the file
        // variant still yields fresh, distinct paths).
        let a = storage_backend_from_env(ExperimentScale::Smoke, "unit test/a");
        let b = storage_backend_from_env(ExperimentScale::Smoke, "unit test/a");
        match (&a, &b) {
            (StorageBackend::Memory, StorageBackend::Memory) => {}
            (StorageBackend::File { path: pa, .. }, StorageBackend::File { path: pb, .. }) => {
                assert_ne!(pa, pb, "sequence number must distinguish paths");
                assert!(!pa.to_string_lossy().contains('/') || pa.parent().is_some());
            }
            _ => panic!("both calls must agree on the backend"),
        }
        assert!(
            ExperimentScale::Smoke.file_cache_pages() < ExperimentScale::Paper.file_cache_pages()
        );
    }

    #[test]
    fn names_round_trip_through_parse() {
        for scale in [ExperimentScale::Smoke, ExperimentScale::Laptop, ExperimentScale::Paper] {
            assert_eq!(ExperimentScale::parse(scale.name()), Some(scale));
        }
    }
}
