//! Per-dataset experiment context: the generated stream, its exact ground truth and the
//! query sets derived from them.

use crate::scale::ExperimentScale;
use gss_datasets::{DatasetProfile, SyntheticDataset, Xoshiro256};
use gss_graph::{AdjacencyListGraph, EdgeKey, StreamEdge, SummaryWrite, VertexId, Weight};

/// A fully materialised dataset: stream items, exact graph and vertex universe.
#[derive(Debug, Clone)]
pub struct DatasetRun {
    /// The profile the stream was generated from.
    pub profile: DatasetProfile,
    /// The stream items, in arrival order.
    pub items: Vec<StreamEdge>,
    /// Exact ground truth built from the same items.
    pub exact: AdjacencyListGraph,
    /// All vertices appearing in the stream.
    pub vertices: Vec<VertexId>,
}

impl DatasetRun {
    /// Generates the dataset for the given scale and builds its ground truth.
    pub fn build(dataset: SyntheticDataset, scale: ExperimentScale) -> Self {
        Self::from_profile(scale.profile(dataset))
    }

    /// Builds a run from an explicit profile.
    pub fn from_profile(profile: DatasetProfile) -> Self {
        let items = profile.generate();
        Self::from_items(profile, items)
    }

    /// Builds a run from pre-generated items (used by tests and the SNAP loader path).
    pub fn from_items(profile: DatasetProfile, items: Vec<StreamEdge>) -> Self {
        let mut exact = AdjacencyListGraph::with_capacity(profile.vertices);
        for item in &items {
            exact.insert(item.source, item.destination, item.weight);
        }
        let vertices = exact.vertices();
        Self { profile, items, exact, vertices }
    }

    /// Number of distinct edges in the ground truth.
    pub fn distinct_edges(&self) -> usize {
        self.exact.edge_count()
    }

    /// The matrix widths this dataset should be swept over at the given scale.
    pub fn widths(&self, scale: ExperimentScale) -> Vec<usize> {
        scale.width_subset(&self.profile.widths())
    }

    /// A uniform sample of at most `limit` distinct edges with their exact weights — the
    /// edge-query set (the paper queries all edges; sampling preserves the ARE in
    /// expectation).
    pub fn edge_query_sample(&self, limit: usize, seed: u64) -> Vec<(EdgeKey, Weight)> {
        let mut edges: Vec<(EdgeKey, Weight)> = self.exact.edges().collect();
        edges.sort();
        sample_in_place(&mut edges, limit, seed);
        edges
    }

    /// A uniform sample of at most `limit` vertices — the node / successor / precursor
    /// query set.
    pub fn node_query_sample(&self, limit: usize, seed: u64) -> Vec<VertexId> {
        let mut vertices = self.vertices.clone();
        sample_in_place(&mut vertices, limit, seed);
        vertices
    }

    /// Up to `count` vertex pairs that are *unreachable* in the exact graph — the
    /// reachability query set of Fig. 12 ("100 unreachable pairs of nodes which are randomly
    /// generated from the graph").
    pub fn unreachable_pairs(&self, count: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut pairs = Vec::with_capacity(count);
        let mut attempts = 0usize;
        let max_attempts = count * 200;
        while pairs.len() < count && attempts < max_attempts {
            attempts += 1;
            let source = self.vertices[rng.next_index(self.vertices.len())];
            let destination = self.vertices[rng.next_index(self.vertices.len())];
            if source == destination {
                continue;
            }
            if !self.exact.is_reachable(source, destination) {
                pairs.push((source, destination));
            }
        }
        pairs
    }

    /// Inserts the whole stream into a summary, one item at a time, and returns the
    /// elapsed wall-clock seconds (the Table I measurement).
    pub fn insert_into(&self, summary: &mut dyn SummaryWrite) -> f64 {
        let start = std::time::Instant::now();
        for item in &self.items {
            summary.insert(item.source, item.destination, item.weight);
        }
        start.elapsed().as_secs_f64()
    }

    /// Inserts the whole stream through the batch ingest path in `batch`-sized chunks and
    /// returns the elapsed wall-clock seconds.  Observationally identical to
    /// [`insert_into`](Self::insert_into); timing differences isolate what batching
    /// amortises (hashing, address sequences, duplicate folding).
    pub fn insert_batches_into(&self, summary: &mut dyn SummaryWrite, batch: usize) -> f64 {
        assert!(batch > 0, "batch size must be positive");
        let start = std::time::Instant::now();
        for chunk in self.items.chunks(batch) {
            summary.insert_batch(chunk);
        }
        start.elapsed().as_secs_f64()
    }
}

/// Keeps a deterministic uniform sample of at most `limit` elements of `items`, in place.
fn sample_in_place<T>(items: &mut Vec<T>, limit: usize, seed: u64) {
    if items.len() <= limit {
        return;
    }
    let mut rng = Xoshiro256::seed_from_u64(seed);
    // Partial Fisher–Yates: move a random remaining element into each of the first `limit`
    // positions, then truncate.
    for i in 0..limit {
        let j = i + rng.next_index(items.len() - i);
        items.swap(i, j);
    }
    items.truncate(limit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_graph::SummaryRead;

    fn tiny_run() -> DatasetRun {
        let profile = SyntheticDataset::CitHepPh.smoke_profile().scaled(0.05);
        DatasetRun::from_profile(profile)
    }

    #[test]
    fn build_materialises_stream_and_ground_truth() {
        let run = tiny_run();
        assert_eq!(run.items.len(), run.profile.stream_items.max(100));
        assert!(run.distinct_edges() > 0);
        assert!(!run.vertices.is_empty());
        assert!(run.distinct_edges() <= run.items.len());
    }

    #[test]
    fn edge_sample_respects_limit_and_contains_true_weights() {
        let run = tiny_run();
        let sample = run.edge_query_sample(50, 1);
        assert!(sample.len() <= 50);
        for (key, weight) in &sample {
            assert_eq!(run.exact.edge_weight(key.source, key.destination), Some(*weight));
        }
        // Deterministic.
        assert_eq!(sample, run.edge_query_sample(50, 1));
        assert_ne!(sample, run.edge_query_sample(50, 2));
    }

    #[test]
    fn node_sample_contains_only_known_vertices() {
        let run = tiny_run();
        let sample = run.node_query_sample(30, 7);
        assert!(sample.len() <= 30);
        for v in &sample {
            assert!(run.vertices.contains(v));
        }
    }

    #[test]
    fn unreachable_pairs_are_truly_unreachable() {
        let run = tiny_run();
        let pairs = run.unreachable_pairs(20, 3);
        assert!(!pairs.is_empty());
        for (s, d) in pairs {
            assert!(!run.exact.is_reachable(s, d));
        }
    }

    #[test]
    fn insert_into_feeds_every_item() {
        let run = tiny_run();
        let mut graph = AdjacencyListGraph::new();
        let elapsed = run.insert_into(&mut graph);
        assert!(elapsed >= 0.0);
        assert_eq!(graph.edge_count(), run.distinct_edges());
    }

    #[test]
    fn widths_follow_scale_subsetting() {
        let run = tiny_run();
        let smoke = run.widths(ExperimentScale::Smoke);
        let laptop = run.widths(ExperimentScale::Laptop);
        assert!(smoke.len() <= laptop.len());
        assert!(!smoke.is_empty());
    }

    #[test]
    fn sampling_keeps_everything_when_under_limit() {
        let mut items = vec![1, 2, 3];
        sample_in_place(&mut items, 10, 0);
        assert_eq!(items, vec![1, 2, 3]);
        let mut many: Vec<u32> = (0..100).collect();
        sample_in_place(&mut many, 10, 0);
        assert_eq!(many.len(), 10);
        let distinct: std::collections::HashSet<_> = many.iter().collect();
        assert_eq!(distinct.len(), 10);
    }
}
