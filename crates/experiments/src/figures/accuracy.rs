//! The shared sweep behind Figs. 8–12: accuracy of GSS (fsize 12/16) vs TCM as a function of
//! the matrix width, for every dataset.
//!
//! | figure | metric | TCM memory ratio |
//! |---|---|---|
//! | Fig. 8 | edge-query ARE | 8× |
//! | Fig. 9 | 1-hop precursor average precision | 256× (scale-capped) |
//! | Fig. 10 | 1-hop successor average precision | 256× (scale-capped) |
//! | Fig. 11 | node-query ARE | 256× (scale-capped) |
//! | Fig. 12 | reachability true-negative recall | 256× (scale-capped) |

use crate::builders::{build_gss, build_tcm_with_ratio};
use crate::context::DatasetRun;
use crate::metrics::{average_relative_error, mean, set_precision, true_negative_recall};
use crate::report::{fmt_float, Table};
use crate::scale::ExperimentScale;
use gss_datasets::SyntheticDataset;
use gss_graph::algorithms::node_query::node_out_weight;
use gss_graph::{SummaryRead, VertexId};
use std::collections::{HashSet, VecDeque};

/// Which of the five accuracy figures to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccuracyFigure {
    /// Fig. 8: average relative error of edge queries.
    EdgeQueryAre,
    /// Fig. 9: average precision of 1-hop precursor queries.
    PrecursorPrecision,
    /// Fig. 10: average precision of 1-hop successor queries.
    SuccessorPrecision,
    /// Fig. 11: average relative error of node queries.
    NodeQueryAre,
    /// Fig. 12: true negative recall of reachability queries.
    ReachabilityTnr,
}

impl AccuracyFigure {
    /// Figure number and metric name, for table titles.
    pub fn label(self) -> &'static str {
        match self {
            Self::EdgeQueryAre => "Fig 8: edge query ARE",
            Self::PrecursorPrecision => "Fig 9: 1-hop precursor average precision",
            Self::SuccessorPrecision => "Fig 10: 1-hop successor average precision",
            Self::NodeQueryAre => "Fig 11: node query ARE",
            Self::ReachabilityTnr => "Fig 12: reachability true negative recall",
        }
    }

    /// The TCM memory ratio the paper gives this figure.
    pub fn tcm_ratio(self, scale: ExperimentScale) -> f64 {
        match self {
            Self::EdgeQueryAre => scale.tcm_edge_ratio(),
            _ => scale.tcm_topology_ratio(),
        }
    }
}

/// Bounded BFS that distinguishes "search exhausted, destination not found" (a definite
/// negative answer) from "visit budget exceeded" (treated as *reachable*, the conservative
/// answer for a structure with false-positive edges).
fn reports_unreachable(
    summary: &dyn SummaryRead,
    source: VertexId,
    destination: VertexId,
    limit: usize,
) -> bool {
    if source == destination {
        return false;
    }
    let mut visited: HashSet<VertexId> = HashSet::from([source]);
    let mut queue: VecDeque<VertexId> = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        for next in summary.successors(v) {
            if next == destination {
                return false;
            }
            if visited.len() >= limit {
                return false; // budget exceeded: cannot certify unreachability
            }
            if visited.insert(next) {
                queue.push_back(next);
            }
        }
    }
    true
}

/// Evaluates one summary under the figure's metric.
fn evaluate(
    figure: AccuracyFigure,
    summary: &dyn SummaryRead,
    run: &DatasetRun,
    sample: usize,
) -> f64 {
    match figure {
        AccuracyFigure::EdgeQueryAre => {
            let queries = run.edge_query_sample(sample, 0xED6E);
            let pairs: Vec<(i64, i64)> = queries
                .iter()
                .map(|(key, truth)| {
                    (summary.edge_weight(key.source, key.destination).unwrap_or(0), *truth)
                })
                .collect();
            average_relative_error(&pairs)
        }
        AccuracyFigure::NodeQueryAre => {
            let queries = run.node_query_sample(sample, 0x40DE);
            let pairs: Vec<(i64, i64)> = queries
                .iter()
                .map(|&v| (node_out_weight(summary, v), run.exact.node_out_weight(v)))
                .collect();
            average_relative_error(&pairs)
        }
        AccuracyFigure::SuccessorPrecision => {
            let queries = run.node_query_sample(sample, 0x50CC);
            let precisions: Vec<f64> = queries
                .iter()
                .map(|&v| set_precision(&run.exact.successors(v), &summary.successors(v)))
                .collect();
            mean(&precisions)
        }
        AccuracyFigure::PrecursorPrecision => {
            let queries = run.node_query_sample(sample, 0x93EC);
            let precisions: Vec<f64> = queries
                .iter()
                .map(|&v| set_precision(&run.exact.precursors(v), &summary.precursors(v)))
                .collect();
            mean(&precisions)
        }
        AccuracyFigure::ReachabilityTnr => {
            let pairs = run.unreachable_pairs(100.min(sample), 0x3EAC);
            let limit = run.vertices.len() * 2;
            let negatives =
                pairs.iter().filter(|&&(s, d)| reports_unreachable(summary, s, d, limit)).count();
            true_negative_recall(negatives, pairs.len())
        }
    }
}

/// Runs one accuracy figure for one dataset, sweeping the matrix width.
pub fn run_accuracy_figure(
    figure: AccuracyFigure,
    dataset: SyntheticDataset,
    scale: ExperimentScale,
) -> Table {
    let run = DatasetRun::build(dataset, scale);
    run_accuracy_figure_on(figure, dataset, scale, &run)
}

/// Same as [`run_accuracy_figure`] but reusing a pre-built [`DatasetRun`] (the bench harness
/// shares one run across figures to avoid regenerating streams).
pub fn run_accuracy_figure_on(
    figure: AccuracyFigure,
    dataset: SyntheticDataset,
    scale: ExperimentScale,
    run: &DatasetRun,
) -> Table {
    let tcm_ratio = figure.tcm_ratio(scale);
    let sample = scale.query_sample();
    let tcm_header = format!("tcm_{tcm_ratio}x_memory");
    let mut table = Table::new(
        format!("{} — {} ({} scale)", figure.label(), dataset.name(), scale.name()),
        &["width", "gss_fsize12", "gss_fsize16", tcm_header.as_str()],
    );
    for width in run.widths(scale) {
        let mut gss12 = build_gss(dataset, width, 12);
        let mut gss16 = build_gss(dataset, width, 16);
        let mut tcm = build_tcm_with_ratio(width, gss16.config().rooms, tcm_ratio);
        run.insert_into(&mut gss12);
        run.insert_into(&mut gss16);
        run.insert_into(&mut tcm);
        let row = vec![
            width.to_string(),
            fmt_float(evaluate(figure, &gss12, run, sample)),
            fmt_float(evaluate(figure, &gss16, run, sample)),
            fmt_float(evaluate(figure, &tcm, run, sample)),
        ];
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_datasets::DatasetProfile;
    use gss_graph::SummaryWrite;

    fn tiny_run(dataset: SyntheticDataset) -> DatasetRun {
        let profile: DatasetProfile = dataset.smoke_profile().scaled(0.02);
        DatasetRun::from_profile(profile)
    }

    fn value(table: &Table, row: usize, column: usize) -> f64 {
        table.rows[row][column].parse().unwrap()
    }

    #[test]
    fn edge_query_figure_shows_gss_beating_tcm() {
        let dataset = SyntheticDataset::EmailEuAll;
        let run = tiny_run(dataset);
        let table = run_accuracy_figure_on(
            AccuracyFigure::EdgeQueryAre,
            dataset,
            ExperimentScale::Smoke,
            &run,
        );
        assert!(!table.rows.is_empty());
        for row in 0..table.rows.len() {
            let gss16 = value(&table, row, 2);
            let tcm = value(&table, row, 3);
            assert!(gss16 >= 0.0);
            assert!(tcm >= gss16, "TCM ARE {tcm} should be >= GSS ARE {gss16}");
        }
    }

    #[test]
    fn successor_precision_figure_shows_gss_near_one() {
        let dataset = SyntheticDataset::CitHepPh;
        let run = tiny_run(dataset);
        let table = run_accuracy_figure_on(
            AccuracyFigure::SuccessorPrecision,
            dataset,
            ExperimentScale::Smoke,
            &run,
        );
        let last = table.rows.len() - 1;
        let gss16 = value(&table, last, 2);
        let tcm = value(&table, last, 3);
        assert!(gss16 > 0.95, "GSS successor precision {gss16} should be near 1");
        assert!(gss16 >= tcm, "GSS precision {gss16} should beat TCM {tcm}");
    }

    #[test]
    fn reachability_figure_reports_rates_in_unit_interval() {
        let dataset = SyntheticDataset::LkmlReply;
        let run = tiny_run(dataset);
        let table = run_accuracy_figure_on(
            AccuracyFigure::ReachabilityTnr,
            dataset,
            ExperimentScale::Smoke,
            &run,
        );
        for row in 0..table.rows.len() {
            for column in 1..4 {
                let rate = value(&table, row, column);
                assert!((0.0..=1.0).contains(&rate), "rate {rate} out of range");
            }
        }
        let last = table.rows.len() - 1;
        assert!(value(&table, last, 2) >= value(&table, last, 3));
    }

    #[test]
    fn labels_and_ratios_are_wired_to_the_right_figures() {
        assert!(AccuracyFigure::EdgeQueryAre.label().contains("Fig 8"));
        assert!(AccuracyFigure::NodeQueryAre.label().contains("Fig 11"));
        assert_eq!(AccuracyFigure::EdgeQueryAre.tcm_ratio(ExperimentScale::Paper), 8.0);
        assert_eq!(AccuracyFigure::SuccessorPrecision.tcm_ratio(ExperimentScale::Paper), 256.0);
    }

    #[test]
    fn bounded_bfs_certifies_unreachability_only_when_exhausted() {
        let mut graph = gss_graph::AdjacencyListGraph::new();
        graph.insert(1, 2, 1);
        graph.insert(2, 3, 1);
        graph.insert(10, 11, 1);
        assert!(reports_unreachable(&graph, 3, 1, 100));
        assert!(!reports_unreachable(&graph, 1, 3, 100));
        // A sink certifies unreachability immediately (the frontier is exhausted).
        assert!(reports_unreachable(&graph, 3, 11, 100));
        // A tiny visit budget cannot certify unreachability of a multi-hop negative pair.
        assert!(!reports_unreachable(&graph, 1, 11, 1));
    }
}
