//! Per-figure experiment runners.
//!
//! One module per table/figure of the paper's evaluation (Section VII), plus the theory
//! curves of Fig. 3 and the ablations suggested by Section V.  Each runner returns
//! [`Table`](crate::report::Table)s carrying the same series the paper plots, so the bench
//! harness just prints them and writes CSVs.

pub mod ablation;
pub mod accuracy;
pub mod fig03;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod table1;

pub use ablation::{run_model_vs_measured, run_parameter_ablation};
pub use accuracy::{run_accuracy_figure, AccuracyFigure};
pub use fig03::run_fig03;
pub use fig13::run_fig13;
pub use fig14::run_fig14;
pub use fig15::run_fig15;
pub use table1::run_table1;
