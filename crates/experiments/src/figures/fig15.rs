//! Fig. 15: subgraph matching on windows of the web-NotreDame stream — GSS (VF2 over the
//! primitives, at one tenth of the exact matcher's memory) vs an exact windowed matcher
//! (the SJ-tree stand-in).
//!
//! For every window size the harness samples a few windows, extracts query patterns from
//! each window by random walk (6/9/12/15 edges, several instances each, as in the paper),
//! and asks both matchers for an embedding.  A GSS answer is *correct* when the embedding it
//! returns is verified edge-by-edge against the exact window graph; the exact matcher is
//! correct by construction, so its row is the constant 1.0 the paper plots.

use crate::context::DatasetRun;
use crate::report::{fmt_float, Table};
use crate::scale::ExperimentScale;
use gss_baselines::ExactWindowMatcher;
use gss_core::{GssConfig, GssSketch};
use gss_datasets::SyntheticDataset;
use gss_graph::algorithms::find_pattern_matches;
use gss_graph::{StreamEdge, SummaryRead, SummaryWrite};

/// Window sizes (in stream items) at paper scale.
pub const PAPER_WINDOW_SIZES: [usize; 5] = [10_000, 20_000, 30_000, 40_000, 50_000];
/// Pattern sizes in edges, as in the paper.
pub const PATTERN_EDGE_COUNTS: [usize; 4] = [6, 9, 12, 15];

/// How many windows and pattern instances to evaluate per window size.
fn sampling(scale: ExperimentScale) -> (usize, usize) {
    match scale {
        ExperimentScale::Smoke => (2, 2),
        ExperimentScale::Laptop => (3, 3),
        ExperimentScale::Paper => (5, 5),
    }
}

/// GSS width whose matrix (2 rooms, 16-bit fingerprints) uses about one tenth of `bytes`.
fn gss_width_for_tenth(bytes: usize) -> usize {
    let config = GssConfig::paper_default(1);
    let per_bucket = (config.rooms * config.bytes_per_room()) as f64;
    (((bytes as f64 / 10.0) / per_bucket).sqrt().floor() as usize).max(8)
}

/// Evaluates one window: returns `(correct, attempted)` GSS pattern verdicts.
fn evaluate_window(window: &[StreamEdge], instances_per_size: usize, seed: u64) -> (usize, usize) {
    let exact = ExactWindowMatcher::from_window(window);
    if exact.vertex_count() < 4 {
        return (0, 0);
    }
    let mut gss =
        GssSketch::new(GssConfig::paper_default(gss_width_for_tenth(exact.memory_bytes())))
            .expect("valid config");
    for item in window {
        gss.insert(item.source, item.destination, item.weight);
    }
    let universe = exact.vertices().to_vec();
    let mut correct = 0usize;
    let mut attempted = 0usize;
    for (size_index, &edge_count) in PATTERN_EDGE_COUNTS.iter().enumerate() {
        for instance in 0..instances_per_size {
            let start = universe[(seed as usize + size_index * 31 + instance * 7) % universe.len()];
            let pattern_seed = seed ^ ((size_index as u64) << 32) ^ instance as u64;
            let Some(pattern) = exact.random_walk_pattern(start, edge_count, pattern_seed) else {
                continue;
            };
            attempted += 1;
            // Ask GSS for one embedding and verify it against the exact window graph.
            let matches = find_pattern_matches(&gss, &pattern, &universe, 1);
            let verified = matches.first().is_some_and(|mapping| {
                pattern.edges().iter().all(|edge| {
                    let source = mapping[&edge.source];
                    let destination = mapping[&edge.destination];
                    exact.graph().edge_weight(source, destination).is_some()
                })
            });
            if verified {
                correct += 1;
            }
        }
    }
    (correct, attempted)
}

/// Runs Fig. 15 on a pre-built dataset run.
pub fn run_fig15_on(scale: ExperimentScale, run: &DatasetRun) -> Table {
    let (windows_per_size, instances_per_size) = sampling(scale);
    let mut table = Table::new(
        format!("Fig 15: subgraph matching correct rate — web-NotreDame ({} scale)", scale.name()),
        &["window_size", "gss_correct_rate", "exact_matcher_correct_rate", "queries"],
    );
    let scale_factor = run.profile.scale.max(1e-6);
    for &paper_window in &PAPER_WINDOW_SIZES {
        let window_size = ((paper_window as f64 * scale_factor) as usize).max(500);
        let mut correct = 0usize;
        let mut attempted = 0usize;
        for window_index in 0..windows_per_size {
            let offset = (window_index * run.items.len() / windows_per_size)
                .min(run.items.len().saturating_sub(window_size));
            let window = &run.items[offset..(offset + window_size).min(run.items.len())];
            let (c, a) = evaluate_window(window, instances_per_size, 0xF15 + window_index as u64);
            correct += c;
            attempted += a;
        }
        let rate = if attempted == 0 { 1.0 } else { correct as f64 / attempted as f64 };
        table.push_row(vec![
            window_size.to_string(),
            fmt_float(rate),
            fmt_float(1.0),
            attempted.to_string(),
        ]);
    }
    table
}

/// Runs Fig. 15, generating the web-NotreDame dataset at the given scale.
pub fn run_fig15(scale: ExperimentScale) -> Table {
    let run = DatasetRun::build(SyntheticDataset::WebNotreDame, scale);
    run_fig15_on(scale, &run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_datasets::DatasetProfile;

    #[test]
    fn correct_rate_is_high_and_bounded() {
        let profile: DatasetProfile = SyntheticDataset::WebNotreDame.smoke_profile().scaled(0.05);
        let run = DatasetRun::from_profile(profile);
        let table = run_fig15_on(ExperimentScale::Smoke, &run);
        assert_eq!(table.rows.len(), PAPER_WINDOW_SIZES.len());
        let mut total_queries = 0usize;
        for row in &table.rows {
            let rate: f64 = row[1].parse().unwrap();
            assert!((0.0..=1.0).contains(&rate));
            assert!(rate > 0.5, "GSS correct rate {rate} unexpectedly low");
            assert_eq!(row[2].parse::<f64>().unwrap(), 1.0);
            total_queries += row[3].parse::<usize>().unwrap();
        }
        assert!(total_queries > 0, "at least some pattern queries must be attempted");
    }

    #[test]
    fn width_sizing_uses_a_tenth_of_the_budget() {
        let small = gss_width_for_tenth(26_000);
        let large = gss_width_for_tenth(2_600_000);
        assert!(large > small);
        assert!(small >= 8);
    }
}
