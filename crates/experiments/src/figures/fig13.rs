//! Fig. 13: buffer percentage as a function of the matrix width, for the four GSS variants
//! `{1, 2} rooms × {square hashing, no square hashing}`.
//!
//! As in the paper, the x-axis width `w` is the side length of the 2-room configurations;
//! the 1-room configurations use a `√2`-times larger matrix so all four curves compare at
//! equal memory ("When GSS has 1 room in each bucket, the width of the matrix is 2^0.5 times
//! larger to make the memory unchanged").

use crate::context::DatasetRun;
use crate::report::{fmt_float, Table};
use crate::scale::ExperimentScale;
use gss_core::{GssConfig, GssSketch};
use gss_datasets::SyntheticDataset;

/// The three datasets the paper plots in Fig. 13.
pub const FIG13_DATASETS: [SyntheticDataset; 3] = [
    SyntheticDataset::WebNotreDame,
    SyntheticDataset::LkmlReply,
    SyntheticDataset::CaidaNetworkFlow,
];

fn variant_config(base_width: usize, rooms: usize, square_hashing: bool) -> GssConfig {
    // Equal-memory widening for single-room variants.
    let width = if rooms == 1 {
        ((base_width as f64) * std::f64::consts::SQRT_2).round() as usize
    } else {
        base_width
    };
    let config = GssConfig::paper_default(width).with_rooms(rooms);
    if square_hashing {
        config
    } else {
        config.with_square_hashing(false)
    }
}

fn buffer_percentage_for(run: &DatasetRun, config: GssConfig) -> f64 {
    let mut sketch = GssSketch::new(config).expect("variant configs are valid");
    run.insert_into(&mut sketch);
    sketch.buffer_percentage()
}

/// Runs Fig. 13 for a single dataset.
pub fn run_fig13_dataset(dataset: SyntheticDataset, scale: ExperimentScale) -> Table {
    let run = DatasetRun::build(dataset, scale);
    run_fig13_dataset_on(dataset, scale, &run)
}

/// Runs Fig. 13 for a single dataset, reusing an existing [`DatasetRun`].
pub fn run_fig13_dataset_on(
    dataset: SyntheticDataset,
    scale: ExperimentScale,
    run: &DatasetRun,
) -> Table {
    let mut table = Table::new(
        format!("Fig 13: buffer percentage — {} ({} scale)", dataset.name(), scale.name()),
        &["width", "room1", "room2", "room1_no_square_hash", "room2_no_square_hash"],
    );
    for width in run.widths(scale) {
        let room1 = buffer_percentage_for(run, variant_config(width, 1, true));
        let room2 = buffer_percentage_for(run, variant_config(width, 2, true));
        let room1_plain = buffer_percentage_for(run, variant_config(width, 1, false));
        let room2_plain = buffer_percentage_for(run, variant_config(width, 2, false));
        table.push_row(vec![
            width.to_string(),
            fmt_float(room1),
            fmt_float(room2),
            fmt_float(room1_plain),
            fmt_float(room2_plain),
        ]);
    }
    table
}

/// Runs Fig. 13 for all three paper datasets.
pub fn run_fig13(scale: ExperimentScale) -> Vec<Table> {
    FIG13_DATASETS.iter().map(|&dataset| run_fig13_dataset(dataset, scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_datasets::DatasetProfile;

    #[test]
    fn square_hashing_never_buffers_more_than_plain_hashing() {
        let profile: DatasetProfile = SyntheticDataset::LkmlReply.smoke_profile().scaled(0.05);
        let run = DatasetRun::from_profile(profile);
        let table = run_fig13_dataset_on(SyntheticDataset::LkmlReply, ExperimentScale::Smoke, &run);
        assert!(!table.rows.is_empty());
        for row in &table.rows {
            let room2: f64 = row[2].parse().unwrap();
            let room2_plain: f64 = row[4].parse().unwrap();
            let room1: f64 = row[1].parse().unwrap();
            let room1_plain: f64 = row[3].parse().unwrap();
            assert!(room2 <= room2_plain + 1e-9, "square hashing worse: {room2} > {room2_plain}");
            assert!(room1 <= room1_plain + 1e-9);
            for value in [room1, room2, room1_plain, room2_plain] {
                assert!((0.0..=1.0).contains(&value));
            }
        }
    }

    #[test]
    fn buffer_percentage_shrinks_with_width() {
        let profile: DatasetProfile = SyntheticDataset::WebNotreDame.smoke_profile().scaled(0.05);
        let run = DatasetRun::from_profile(profile);
        let table =
            run_fig13_dataset_on(SyntheticDataset::WebNotreDame, ExperimentScale::Smoke, &run);
        let first: f64 = table.rows.first().unwrap()[4].parse().unwrap();
        let last: f64 = table.rows.last().unwrap()[4].parse().unwrap();
        assert!(last <= first + 1e-9, "wider matrices should not buffer more ({first} -> {last})");
    }

    #[test]
    fn variant_config_widens_single_room_matrices() {
        let one_room = variant_config(100, 1, true);
        let two_room = variant_config(100, 2, true);
        assert_eq!(two_room.width, 100);
        assert_eq!(one_room.width, 141);
        assert!(!variant_config(100, 2, false).square_hashing);
        // Equal memory within rounding error.
        let ratio = one_room.matrix_bytes() as f64 / two_room.matrix_bytes() as f64;
        assert!((ratio - 1.0).abs() < 0.02, "memory ratio {ratio}");
    }
}
