//! Ablations over the GSS design parameters, plus a model-vs-measurement check.
//!
//! These experiments are not figures in the paper, but they exercise the design choices
//! Section V motivates (sequence length `r`, candidate count `k`, rooms `l`, fingerprint
//! width) and validate the Section VI models against measurements, which `DESIGN.md` lists
//! as part of the reproduction.

use crate::builders::gss_config_for;
use crate::context::DatasetRun;
use crate::metrics::{average_relative_error, mips};
use crate::report::{fmt_float, Table};
use crate::scale::ExperimentScale;
use gss_analysis::{edge_query_correct_rate, leftover_probability, BufferModelParams};
use gss_core::{GssConfig, GssSketch};
use gss_datasets::SyntheticDataset;
use gss_graph::SummaryRead;

/// Evaluates one GSS configuration: returns `(buffer_percentage, edge_are, mips)`.
fn evaluate_config(run: &DatasetRun, config: GssConfig, sample: usize) -> (f64, f64, f64) {
    let mut sketch = GssSketch::new(config).expect("ablation configs are valid");
    let elapsed = run.insert_into(&mut sketch);
    let queries = run.edge_query_sample(sample, 0xAB1A);
    let pairs: Vec<(i64, i64)> = queries
        .iter()
        .map(|(key, truth)| (sketch.edge_weight(key.source, key.destination).unwrap_or(0), *truth))
        .collect();
    (
        sketch.buffer_percentage(),
        average_relative_error(&pairs),
        mips(run.items.len() as u64, elapsed),
    )
}

/// Parameter ablation on an email-EuAll-like stream: sweeps `r`, `k`, `l` and the
/// fingerprint width one at a time around the paper's defaults.
pub fn run_parameter_ablation(scale: ExperimentScale) -> Table {
    let dataset = SyntheticDataset::EmailEuAll;
    let run = DatasetRun::build(dataset, scale);
    run_parameter_ablation_on(scale, &run)
}

/// Same as [`run_parameter_ablation`] with a pre-built run.
pub fn run_parameter_ablation_on(scale: ExperimentScale, run: &DatasetRun) -> Table {
    let dataset = run.profile.dataset;
    let widths = run.widths(scale);
    let width = widths[widths.len() / 2];
    let sample = scale.query_sample();
    let base = gss_config_for(dataset, width, 16);
    let mut table = Table::new(
        format!("Ablation: GSS parameters — {} ({} scale)", dataset.name(), scale.name()),
        &["variant", "buffer_percentage", "edge_query_are", "mips"],
    );
    let variants: Vec<(String, GssConfig)> = vec![
        ("paper default".to_string(), base),
        ("r=4,k=4".to_string(), GssConfig { sequence_length: 4, candidates: 4, ..base }),
        ("r=16,k=16".to_string(), GssConfig { sequence_length: 16, candidates: 16, ..base }),
        ("no sampling".to_string(), base.with_sampling(false)),
        ("rooms=1".to_string(), base.with_rooms(1)),
        ("rooms=4".to_string(), base.with_rooms(4)),
        ("no square hashing".to_string(), base.with_square_hashing(false)),
        ("fingerprint=8".to_string(), base.with_fingerprint_bits(8)),
        ("fingerprint=12".to_string(), base.with_fingerprint_bits(12)),
    ];
    for (name, config) in variants {
        let (buffer, are, speed) = evaluate_config(run, config, sample);
        table.push_row(vec![name, fmt_float(buffer), fmt_float(are), format!("{speed:.4}")]);
    }
    table
}

/// Model-vs-measurement check: compares the Section VI collision and buffer models against
/// measured edge ARE / buffer percentage across a width sweep.
pub fn run_model_vs_measured(scale: ExperimentScale) -> Table {
    let dataset = SyntheticDataset::EmailEuAll;
    let run = DatasetRun::build(dataset, scale);
    run_model_vs_measured_on(scale, &run)
}

/// Same as [`run_model_vs_measured`] with a pre-built run.
pub fn run_model_vs_measured_on(scale: ExperimentScale, run: &DatasetRun) -> Table {
    let dataset = run.profile.dataset;
    let sample = scale.query_sample();
    let mut table = Table::new(
        format!("Model vs measured — {} ({} scale)", dataset.name(), scale.name()),
        &[
            "width",
            "measured_edge_are",
            "model_collision_rate",
            "measured_buffer_pct",
            "model_leftover_prob",
        ],
    );
    let total_edges = run.distinct_edges() as f64;
    let average_degree = 2.0 * total_edges / run.vertices.len() as f64;
    for width in run.widths(scale) {
        let config = gss_config_for(dataset, width, 16);
        let (buffer, are, _) = evaluate_config(run, config, sample);
        let model_collision =
            1.0 - edge_query_correct_rate(config.hash_range() as f64, total_edges, average_degree);
        let model_leftover = leftover_probability(&BufferModelParams {
            existing_edges: total_edges,
            adjacent_edges: average_degree,
            width: width as f64,
            sequence_length: config.sequence_length as f64,
            rooms: config.rooms as f64,
            candidates: config.candidates as f64,
        });
        table.push_row(vec![
            width.to_string(),
            fmt_float(are),
            fmt_float(model_collision),
            fmt_float(buffer),
            fmt_float(model_leftover),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_datasets::DatasetProfile;

    fn tiny_run() -> DatasetRun {
        let profile: DatasetProfile = SyntheticDataset::EmailEuAll.smoke_profile().scaled(0.03);
        DatasetRun::from_profile(profile)
    }

    #[test]
    fn ablation_reports_every_variant() {
        let run = tiny_run();
        let table = run_parameter_ablation_on(ExperimentScale::Smoke, &run);
        assert_eq!(table.rows.len(), 9);
        for row in &table.rows {
            let buffer: f64 = row[1].parse().unwrap();
            let are: f64 = row[2].parse().unwrap();
            let speed: f64 = row[3].parse().unwrap();
            assert!((0.0..=1.0).contains(&buffer));
            assert!(are >= 0.0);
            assert!(speed > 0.0);
        }
    }

    #[test]
    fn smaller_fingerprints_do_not_improve_accuracy() {
        let run = tiny_run();
        let table = run_parameter_ablation_on(ExperimentScale::Smoke, &run);
        let find = |name: &str| -> f64 {
            table.rows.iter().find(|r| r[0] == name).unwrap()[2].parse().unwrap()
        };
        assert!(find("fingerprint=8") >= find("paper default") - 1e-12);
    }

    #[test]
    fn model_vs_measured_produces_comparable_columns() {
        let run = tiny_run();
        let table = run_model_vs_measured_on(ExperimentScale::Smoke, &run);
        assert!(!table.rows.is_empty());
        for row in &table.rows {
            assert!(row.len() >= 5, "expected at least 5 columns, got {}: {row:?}", row.len());
            for (column, cell) in row.iter().enumerate().take(5).skip(1) {
                let value: f64 = cell.parse().unwrap();
                assert!((0.0..=1.5).contains(&value), "column {column} value {value}");
            }
        }
    }
}
