//! Fig. 3: theoretical influence of the hash range `M` on primitive accuracy.
//!
//! The paper plots the correct rate of the three primitives as a function of `M/|V|` and the
//! degree of the queried edge/node, computed from the Section VI analysis.  This runner
//! evaluates the same closed forms over a grid and emits one table per panel.

use crate::report::{fmt_float, Table};
use gss_analysis::collision::{figure3_point, Figure3Kind};

/// Grid of `M / |V|` ratios matching the range the paper plots (up to a few hundred).
const M_OVER_V: [f64; 10] = [0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 200.0, 500.0];
/// Degrees of the queried edge/node (the paper uses `ln(d)` axes; we list the raw degrees).
const DEGREES: [f64; 5] = [1.0, 10.0, 100.0, 1_000.0, 10_000.0];

/// Number of vertices assumed by the model evaluation (matches the order of magnitude of the
/// paper's datasets; the curves depend only on the ratios).
const TOTAL_VERTICES: f64 = 100_000.0;
/// Average edges per vertex (`|E|/|V|`, "usually within 10" per Section II).
const EDGES_PER_VERTEX: f64 = 10.0;

fn panel(kind: Figure3Kind, title: &str) -> Table {
    let mut headers: Vec<String> = vec!["M_over_V".to_string()];
    headers.extend(DEGREES.iter().map(|d| format!("degree_{d}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(title, &header_refs);
    for &ratio in &M_OVER_V {
        let mut row = vec![fmt_float(ratio)];
        for &degree in &DEGREES {
            row.push(fmt_float(figure3_point(
                ratio,
                degree,
                TOTAL_VERTICES,
                EDGES_PER_VERTEX,
                kind,
            )));
        }
        table.push_row(row);
    }
    table
}

/// Produces the three panels of Fig. 3.
pub fn run_fig03() -> Vec<Table> {
    vec![
        panel(Figure3Kind::EdgeQuery, "Fig 3(a): edge query correct rate (theory)"),
        panel(Figure3Kind::SuccessorQuery, "Fig 3(b): 1-hop successor query correct rate (theory)"),
        panel(Figure3Kind::PrecursorQuery, "Fig 3(c): 1-hop precursor query correct rate (theory)"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_three_panels_with_full_grids() {
        let panels = run_fig03();
        assert_eq!(panels.len(), 3);
        for panel in &panels {
            assert_eq!(panel.rows.len(), M_OVER_V.len());
            assert_eq!(panel.headers.len(), DEGREES.len() + 1);
        }
    }

    #[test]
    fn correct_rate_grows_with_hash_range_in_every_panel() {
        for panel in run_fig03() {
            let first: f64 = panel.rows.first().unwrap()[1].parse().unwrap();
            let last: f64 = panel.rows.last().unwrap()[1].parse().unwrap();
            assert!(last >= first, "{}: {first} -> {last}", panel.title);
        }
    }

    #[test]
    fn successor_panel_shows_the_papers_thresholds() {
        let panels = run_fig03();
        let successor = &panels[1];
        // Row with M/|V| = 1 should be near zero for degree 10; row with M/|V| = 500 high.
        let low_row = successor.rows.iter().find(|r| r[0] == "1.000000").unwrap();
        let low: f64 = low_row[2].parse().unwrap();
        assert!(low < 0.01);
        let high_row = successor.rows.iter().find(|r| r[0] == "500.00").unwrap();
        let high: f64 = high_row[2].parse().unwrap();
        assert!(high > 0.8);
    }
}
