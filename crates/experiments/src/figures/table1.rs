//! Table I: update speed (million insertions per second) of GSS, GSS without candidate
//! sampling, TCM and the accelerated adjacency list, on the three static datasets.
//!
//! The paper inserts every edge of a dataset, repeats the procedure 100 times and reports
//! the average speed; the repetition count here scales with the experiment scale so smoke
//! runs stay fast.

use crate::builders::{build_gss, build_tcm_with_ratio, gss_config_for};
use crate::context::DatasetRun;
use crate::metrics::mips;
use crate::report::Table;
use crate::scale::ExperimentScale;
use gss_baselines::PaperAdjacencyList;
use gss_core::GssSketch;
use gss_datasets::SyntheticDataset;
use gss_graph::SummaryWrite;

/// The datasets of Table I.
pub const TABLE1_DATASETS: [SyntheticDataset; 3] =
    [SyntheticDataset::EmailEuAll, SyntheticDataset::CitHepPh, SyntheticDataset::WebNotreDame];

/// Number of insert repetitions per structure (100 in the paper).
fn repetitions(scale: ExperimentScale) -> usize {
    match scale {
        ExperimentScale::Smoke => 3,
        ExperimentScale::Laptop => 10,
        ExperimentScale::Paper => 100,
    }
}

/// Measures the average Mips of repeatedly rebuilding `make()` and inserting the stream.
fn measure<S: SummaryWrite, F: Fn() -> S>(run: &DatasetRun, repeats: usize, make: F) -> f64 {
    let mut total_seconds = 0.0;
    let mut total_items = 0u64;
    for _ in 0..repeats {
        let mut summary = make();
        total_seconds += run.insert_into(&mut summary);
        total_items += run.items.len() as u64;
    }
    mips(total_items, total_seconds)
}

/// The matrix width used for the speed measurement: the middle of the dataset's paper sweep
/// (speed "changes little with the matrix size", Section VII-H).
fn speed_width(run: &DatasetRun, scale: ExperimentScale) -> usize {
    let widths = run.widths(scale);
    widths[widths.len() / 2]
}

/// Update speeds in Mips for `(gss, gss_no_sampling, tcm, adjacency_list)` on one dataset.
pub type SpeedMeasurements = (f64, f64, f64, f64);

/// A Table I row: the structure's display name and its column extractor.
type SpeedRow = (&'static str, fn(&SpeedMeasurements) -> f64);

/// Runs Table I for one dataset and returns a [`SpeedMeasurements`] tuple.
pub fn run_table1_dataset(dataset: SyntheticDataset, scale: ExperimentScale) -> SpeedMeasurements {
    let run = DatasetRun::build(dataset, scale);
    run_table1_dataset_on(dataset, scale, &run)
}

/// Same as [`run_table1_dataset`] but reusing an existing [`DatasetRun`].
pub fn run_table1_dataset_on(
    dataset: SyntheticDataset,
    scale: ExperimentScale,
    run: &DatasetRun,
) -> SpeedMeasurements {
    let repeats = repetitions(scale);
    let width = speed_width(run, scale);
    let gss = measure(run, repeats, || build_gss(dataset, width, 16));
    let gss_no_sampling = measure(run, repeats, || {
        GssSketch::new(gss_config_for(dataset, width, 16).with_sampling(false))
            .expect("valid config")
    });
    let tcm = measure(run, repeats, || build_tcm_with_ratio(width, 2, scale.tcm_edge_ratio()));
    let adjacency = measure(run, repeats, PaperAdjacencyList::new);
    (gss, gss_no_sampling, tcm, adjacency)
}

/// Runs the full Table I.
pub fn run_table1(scale: ExperimentScale) -> Table {
    let mut table = Table::new(
        format!("Table I: update speed in Mips ({} scale)", scale.name()),
        &["data_structure", "email-EuAll", "cit-HepPh", "web-NotreDame"],
    );
    let mut results = Vec::new();
    for dataset in TABLE1_DATASETS {
        results.push(run_table1_dataset(dataset, scale));
    }
    let rows: [SpeedRow; 4] = [
        ("GSS", |r| r.0),
        ("GSS(no sampling)", |r| r.1),
        ("TCM", |r| r.2),
        ("Adjacency Lists", |r| r.3),
    ];
    for (name, extract) in rows {
        let mut row = vec![name.to_string()];
        for result in &results {
            row.push(format!("{:.4}", extract(result)));
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_datasets::DatasetProfile;

    #[test]
    fn all_structures_report_positive_throughput() {
        let dataset = SyntheticDataset::CitHepPh;
        let profile: DatasetProfile = dataset.smoke_profile().scaled(0.05);
        let run = DatasetRun::from_profile(profile);
        let (gss, gss_ns, tcm, adjacency) =
            run_table1_dataset_on(dataset, ExperimentScale::Smoke, &run);
        for speed in [gss, gss_ns, tcm, adjacency] {
            assert!(speed > 0.0, "throughput must be positive, got {speed}");
        }
    }

    #[test]
    fn repetitions_scale_with_experiment_scale() {
        assert!(repetitions(ExperimentScale::Smoke) < repetitions(ExperimentScale::Laptop));
        assert_eq!(repetitions(ExperimentScale::Paper), 100);
    }

    #[test]
    fn speed_width_picks_a_paper_width() {
        let dataset = SyntheticDataset::EmailEuAll;
        let run = DatasetRun::from_profile(dataset.smoke_profile().scaled(0.05));
        let width = speed_width(&run, ExperimentScale::Smoke);
        assert!(run.widths(ExperimentScale::Smoke).contains(&width));
    }
}
