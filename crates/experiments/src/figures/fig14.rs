//! Fig. 14: triangle counting on cit-HepPh — GSS vs TRIÈST at equal memory.
//!
//! For each memory budget the harness builds a GSS sketch whose matrix fits the budget and a
//! TRIÈST reservoir of the capacity that fits the same budget, feeds both the stream (TRIÈST
//! receives the deduplicated undirected edges, as in the paper), counts triangles through
//! the query primitives on GSS, and reports each estimator's relative error against the
//! exact count.

use crate::context::DatasetRun;
use crate::report::{fmt_float, Table};
use crate::scale::ExperimentScale;
use gss_baselines::Triest;
use gss_core::{GssConfig, GssSketch};
use gss_datasets::SyntheticDataset;
use gss_graph::algorithms::count_triangles;

/// Memory budgets in megabytes at paper scale (the x-axis of Fig. 14).
pub const PAPER_MEMORY_MB: [f64; 6] = [2.5, 3.0, 3.5, 4.0, 4.5, 5.0];

/// GSS width whose matrix (2 rooms, 16-bit fingerprints) fits `bytes`.
fn gss_width_for_bytes(bytes: f64) -> usize {
    let config = GssConfig::paper_default(1);
    let per_bucket = (config.rooms * config.bytes_per_room()) as f64;
    ((bytes / per_bucket).sqrt().floor() as usize).max(4)
}

/// Runs Fig. 14 on a pre-built dataset run.
pub fn run_fig14_on(scale: ExperimentScale, run: &DatasetRun) -> Table {
    let mut table = Table::new(
        format!("Fig 14: triangle count relative error — cit-HepPh ({} scale)", scale.name()),
        &["memory_mb", "gss_relative_error", "triest_relative_error"],
    );
    let exact_count = count_triangles(&run.exact, &run.vertices) as f64;
    // Scale the paper's memory axis with the dataset scale so the sample/|E| ratios match.
    let memory_scale = run.profile.scale.max(1e-6);
    for &paper_mb in &PAPER_MEMORY_MB {
        let bytes = paper_mb * 1_048_576.0 * memory_scale;
        // GSS under the budget.
        let mut gss = GssSketch::new(
            GssConfig::paper_small(gss_width_for_bytes(bytes)).with_fingerprint_bits(16),
        )
        .expect("valid config");
        run.insert_into(&mut gss);
        let gss_count = count_triangles(&gss, &run.vertices) as f64;
        let gss_error =
            if exact_count > 0.0 { (gss_count - exact_count).abs() / exact_count } else { 0.0 };
        // TRIÈST under the same budget, on the deduplicated undirected stream.
        let mut triest = Triest::with_seed(Triest::capacity_for_memory(bytes as usize), 0x7714);
        triest.insert_stream_deduplicated(
            run.items.iter().map(|item| (item.source, item.destination)),
        );
        let triest_error = if exact_count > 0.0 {
            (triest.triangle_estimate() - exact_count).abs() / exact_count
        } else {
            0.0
        };
        table.push_row(vec![
            format!("{paper_mb:.1}"),
            fmt_float(gss_error),
            fmt_float(triest_error),
        ]);
    }
    table
}

/// Runs Fig. 14, generating the cit-HepPh dataset at the given scale.
pub fn run_fig14(scale: ExperimentScale) -> Table {
    let run = DatasetRun::build(SyntheticDataset::CitHepPh, scale);
    run_fig14_on(scale, &run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_datasets::DatasetProfile;

    #[test]
    fn both_estimators_achieve_small_relative_error() {
        let profile: DatasetProfile = SyntheticDataset::CitHepPh.smoke_profile().scaled(0.03);
        let run = DatasetRun::from_profile(profile);
        let table = run_fig14_on(ExperimentScale::Smoke, &run);
        assert_eq!(table.rows.len(), PAPER_MEMORY_MB.len());
        for row in &table.rows {
            let gss_error: f64 = row[1].parse().unwrap();
            let triest_error: f64 = row[2].parse().unwrap();
            assert!(gss_error >= 0.0 && triest_error >= 0.0);
            // The paper reports < 1% for both; allow generous slack at the reduced scale,
            // where the TRIÈST reservoir is only a few thousand edges.
            assert!(gss_error < 0.25, "GSS relative error {gss_error} too large");
            assert!(triest_error < 0.75, "TRIEST relative error {triest_error} too large");
        }
    }

    #[test]
    fn width_sizing_is_monotone_in_memory() {
        assert!(gss_width_for_bytes(1_000_000.0) > gss_width_for_bytes(100_000.0));
        assert!(gss_width_for_bytes(1.0) >= 4);
    }
}
