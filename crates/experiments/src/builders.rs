//! Construction of the summaries compared in the figures, with the paper's sizing rules.
//!
//! Every GSS sketch built here honours the `GSS_STORAGE` environment variable (see
//! [`crate::scale::storage_backend_from_env`]): `GSS_STORAGE=file` runs the whole figure
//! suite on the paged file backend, which is how `GSS_SCALE=paper` matrices larger than
//! RAM are exercised.

use crate::scale::{durability_from_env, storage_backend_from_env, ExperimentScale};
use gss_analysis::tcm_width_for_ratio;
use gss_baselines::TcmSketch;
use gss_core::{GssConfig, GssSketch};
use gss_datasets::SyntheticDataset;

/// Number of sketch copies the paper gives TCM ("we apply 4 graph sketches to improve its
/// accuracy").
pub const TCM_DEPTH: usize = 4;

/// The GSS configuration the paper uses for a dataset at a given matrix width and
/// fingerprint size: `r = k = 16`, except `r = k = 8` for the two small datasets
/// (email-EuAll and cit-HepPh).
pub fn gss_config_for(dataset: SyntheticDataset, width: usize, fingerprint_bits: u32) -> GssConfig {
    let base = match dataset {
        SyntheticDataset::EmailEuAll | SyntheticDataset::CitHepPh => GssConfig::paper_small(width),
        _ => GssConfig::paper_default(width),
    };
    base.with_fingerprint_bits(fingerprint_bits)
}

/// Builds the GSS sketch the paper evaluates for a dataset/width/fingerprint combination,
/// on the storage backend selected by `GSS_STORAGE` (memory by default) under the
/// durability policy selected by `GSS_DURABILITY` (strict by default).
pub fn build_gss(dataset: SyntheticDataset, width: usize, fingerprint_bits: u32) -> GssSketch {
    let storage = storage_backend_from_env(
        ExperimentScale::from_env(),
        &format!("{}-w{width}-f{fingerprint_bits}", dataset.name()),
    );
    GssSketch::with_storage_durability(
        gss_config_for(dataset, width, fingerprint_bits),
        storage,
        durability_from_env(),
    )
    .expect("paper configurations are valid and the sketch file is creatable")
}

/// Builds the TCM baseline sized at `ratio ×` the memory of the *16-bit fingerprint* GSS at
/// `gss_width` (the paper's sizing rule: "This ratio is the memory used by all the 4
/// sketches in TCM divided by the memory used by GSS with 16 bit fingerprint").
pub fn build_tcm_with_ratio(gss_width: usize, gss_rooms: usize, ratio: f64) -> TcmSketch {
    let width = tcm_width_for_ratio(gss_width, gss_rooms, 16, ratio, TCM_DEPTH);
    TcmSketch::new(width.max(2), TCM_DEPTH)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_graph::SummaryRead;

    #[test]
    fn small_datasets_use_reduced_sequences() {
        let email = gss_config_for(SyntheticDataset::EmailEuAll, 500, 16);
        assert_eq!(email.sequence_length, 8);
        let web = gss_config_for(SyntheticDataset::WebNotreDame, 500, 16);
        assert_eq!(web.sequence_length, 16);
        assert_eq!(gss_config_for(SyntheticDataset::CitHepPh, 500, 12).fingerprint_bits, 12);
    }

    #[test]
    fn build_gss_produces_configured_sketch() {
        let sketch = build_gss(SyntheticDataset::LkmlReply, 300, 12);
        assert_eq!(sketch.config().width, 300);
        assert_eq!(sketch.config().fingerprint_bits, 12);
        assert!(sketch.name().contains("fsize=12"));
    }

    #[test]
    fn tcm_ratio_sizing_tracks_gss_memory() {
        let gss = build_gss(SyntheticDataset::WebNotreDame, 400, 16);
        let tcm = build_tcm_with_ratio(400, 2, 8.0);
        let achieved = tcm.memory_bytes() as f64 / gss.config().matrix_bytes() as f64;
        assert!((achieved - 8.0).abs() / 8.0 < 0.05, "achieved ratio {achieved}");
        assert_eq!(tcm.depth(), TCM_DEPTH);
    }

    #[test]
    fn tcm_width_is_never_degenerate() {
        let tcm = build_tcm_with_ratio(4, 1, 0.001);
        assert!(tcm.width() >= 2);
    }
}
