//! Exact adjacency-list representation of a streaming graph.
//!
//! This structure plays two roles in the reproduction:
//!
//! 1. **Ground truth** for every accuracy experiment (ARE, precision, true-negative recall
//!    are all computed against the exact weights/neighbourhoods it stores).
//! 2. The **"Adjacency Lists" baseline** of Table I — the paper notes it is "accelerated
//!    using a map that records the position of the list for each node", which is exactly the
//!    `HashMap<VertexId, …>` indexing used here.
//!
//! Memory is `O(|V| + |E|)` and updates are amortised `O(1)`, but the constant factors and
//! per-edge allocations are what make it slower than the sketches in the update-speed
//! experiment.

use crate::summary::{SummaryRead, SummaryStats, SummaryWrite};
use crate::types::{EdgeKey, VertexId, Weight};
use std::collections::HashMap;

/// Exact directed multigraph with aggregated edge weights, stored as forward and reverse
/// adjacency maps.
#[derive(Debug, Clone, Default)]
pub struct AdjacencyListGraph {
    /// Outgoing adjacency: source → (destination → aggregated weight).
    out_edges: HashMap<VertexId, HashMap<VertexId, Weight>>,
    /// Incoming adjacency: destination → set of sources (weights live in `out_edges`).
    in_edges: HashMap<VertexId, Vec<VertexId>>,
    /// Number of distinct edges currently stored.
    edge_count: usize,
    /// Number of stream items inserted.
    items_inserted: u64,
}

impl AdjacencyListGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with capacity hints for the vertex maps.
    pub fn with_capacity(vertices: usize) -> Self {
        Self {
            out_edges: HashMap::with_capacity(vertices),
            in_edges: HashMap::with_capacity(vertices),
            edge_count: 0,
            items_inserted: 0,
        }
    }

    /// Number of distinct vertices that appear as an endpoint of at least one edge.
    pub fn vertex_count(&self) -> usize {
        let mut vertices: std::collections::HashSet<VertexId> =
            self.out_edges.keys().copied().collect();
        vertices.extend(self.in_edges.keys().copied());
        vertices.len()
    }

    /// Number of distinct directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterates over all distinct edges and their aggregated weights.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeKey, Weight)> + '_ {
        self.out_edges
            .iter()
            .flat_map(|(&s, targets)| targets.iter().map(move |(&d, &w)| (EdgeKey::new(s, d), w)))
    }

    /// Returns all vertices that appear in the graph (as source or destination).
    pub fn vertices(&self) -> Vec<VertexId> {
        let mut vertices: std::collections::HashSet<VertexId> =
            self.out_edges.keys().copied().collect();
        vertices.extend(self.in_edges.keys().copied());
        let mut out: Vec<VertexId> = vertices.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Out-degree of a vertex (number of distinct successors).
    pub fn out_degree(&self, vertex: VertexId) -> usize {
        self.out_edges.get(&vertex).map_or(0, HashMap::len)
    }

    /// In-degree of a vertex (number of distinct precursors).
    pub fn in_degree(&self, vertex: VertexId) -> usize {
        self.in_edges.get(&vertex).map_or(0, Vec::len)
    }

    /// Sum of the weights of all out-going edges of `vertex` — the exact answer to the
    /// paper's *node query* (Section VII-E).
    pub fn node_out_weight(&self, vertex: VertexId) -> Weight {
        self.out_edges.get(&vertex).map_or(0, |targets| targets.values().sum())
    }

    /// Sum of the weights of all in-coming edges of `vertex`.
    pub fn node_in_weight(&self, vertex: VertexId) -> Weight {
        self.in_edges.get(&vertex).map_or(0, |sources| {
            sources.iter().filter_map(|s| self.out_edges.get(s).and_then(|t| t.get(&vertex))).sum()
        })
    }

    /// Returns `true` if `destination` is reachable from `source` by a directed path
    /// (exact BFS).  Used to build the unreachable query sets of Fig. 12.
    pub fn is_reachable(&self, source: VertexId, destination: VertexId) -> bool {
        if source == destination {
            return true;
        }
        let mut visited = std::collections::HashSet::new();
        let mut queue = std::collections::VecDeque::new();
        visited.insert(source);
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            if let Some(targets) = self.out_edges.get(&v) {
                for &next in targets.keys() {
                    if next == destination {
                        return true;
                    }
                    if visited.insert(next) {
                        queue.push_back(next);
                    }
                }
            }
        }
        false
    }
}

impl SummaryWrite for AdjacencyListGraph {
    fn insert(&mut self, source: VertexId, destination: VertexId, weight: Weight) {
        self.items_inserted += 1;
        let targets = self.out_edges.entry(source).or_default();
        match targets.entry(destination) {
            std::collections::hash_map::Entry::Occupied(mut slot) => {
                *slot.get_mut() += weight;
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(weight);
                self.edge_count += 1;
                self.in_edges.entry(destination).or_default().push(source);
            }
        }
    }
}

impl SummaryRead for AdjacencyListGraph {
    fn edge_weight(&self, source: VertexId, destination: VertexId) -> Option<Weight> {
        self.out_edges.get(&source).and_then(|targets| targets.get(&destination)).copied()
    }

    fn successors(&self, vertex: VertexId) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = self
            .out_edges
            .get(&vertex)
            .map(|targets| targets.keys().copied().collect())
            .unwrap_or_default();
        out.sort_unstable();
        out
    }

    fn precursors(&self, vertex: VertexId) -> Vec<VertexId> {
        let mut out = self.in_edges.get(&vertex).cloned().unwrap_or_default();
        out.sort_unstable();
        out.dedup();
        out
    }

    fn stats(&self) -> SummaryStats {
        let bytes = self.edge_count
            * (std::mem::size_of::<VertexId>() * 2 + std::mem::size_of::<Weight>())
            + self.out_edges.len() * std::mem::size_of::<VertexId>() * 2;
        SummaryStats {
            bytes,
            items_inserted: self.items_inserted,
            slots: self.edge_count,
            occupied_slots: self.edge_count,
            buffered_edges: 0,
        }
    }

    fn name(&self) -> String {
        "AdjacencyList".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> AdjacencyListGraph {
        // The streaming graph of Fig. 1 in the paper.
        let mut g = AdjacencyListGraph::new();
        let items: &[(u64, u64, i64)] = &[
            (1, 2, 1), // a->b
            (1, 3, 1), // a->c
            (2, 4, 1), // b->d
            (1, 3, 1), // a->c (again)
            (1, 6, 1), // a->f
            (3, 6, 1), // c->f
            (1, 5, 1), // a->e
            (1, 3, 3), // a->c (x3)
            (3, 6, 1), // c->f
            (4, 1, 1), // d->a
            (4, 6, 1), // d->f
            (6, 5, 3), // f->e
            (1, 7, 1), // a->g
            (5, 2, 2), // e->b
            (4, 1, 1), // d->a
        ];
        for &(s, d, w) in items {
            g.insert(s, d, w);
        }
        g
    }

    #[test]
    fn weights_accumulate_across_duplicate_items() {
        let g = sample_graph();
        assert_eq!(g.edge_weight(1, 3), Some(5)); // a->c appeared with weights 1,1,3
        assert_eq!(g.edge_weight(4, 1), Some(2));
        assert_eq!(g.edge_weight(1, 2), Some(1));
        assert_eq!(g.edge_weight(2, 1), None);
    }

    #[test]
    fn successor_and_precursor_sets_match_figure_one() {
        let g = sample_graph();
        assert_eq!(g.successors(1), vec![2, 3, 5, 6, 7]);
        assert_eq!(g.precursors(6), vec![1, 3, 4]);
        assert_eq!(g.successors(7), Vec::<u64>::new());
        assert_eq!(g.precursors(1), vec![4]);
    }

    #[test]
    fn counts_and_degrees() {
        let g = sample_graph();
        assert_eq!(g.vertex_count(), 7);
        assert_eq!(g.edge_count(), 11);
        assert_eq!(g.out_degree(1), 5);
        assert_eq!(g.in_degree(6), 3);
        assert_eq!(g.out_degree(42), 0);
    }

    #[test]
    fn node_weights_sum_outgoing_and_incoming_edges() {
        let g = sample_graph();
        assert_eq!(g.node_out_weight(1), 1 + 5 + 1 + 1 + 1); // b,c,e,f,g
        assert_eq!(g.node_in_weight(6), 1 + 2 + 1); // from a, c(x2), d
        assert_eq!(g.node_out_weight(7), 0);
    }

    #[test]
    fn deletions_reduce_weight() {
        let mut g = sample_graph();
        g.insert(1, 3, -5);
        assert_eq!(g.edge_weight(1, 3), Some(0));
    }

    #[test]
    fn reachability_follows_directed_paths() {
        let g = sample_graph();
        assert!(g.is_reachable(1, 5)); // a -> e directly
        assert!(g.is_reachable(2, 6)); // b -> d -> f
        assert!(!g.is_reachable(7, 1)); // g has no out-edges
        assert!(g.is_reachable(3, 3)); // trivially reachable from itself
    }

    #[test]
    fn edges_iterator_covers_all_edges() {
        let g = sample_graph();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.edge_count());
        assert!(edges.contains(&(EdgeKey::new(1, 3), 5)));
    }

    #[test]
    fn stats_report_exact_occupancy() {
        let g = sample_graph();
        let stats = g.stats();
        assert_eq!(stats.items_inserted, 15);
        assert_eq!(stats.slots, 11);
        assert_eq!(stats.occupied_slots, 11);
        assert_eq!(stats.buffered_edges, 0);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn vertices_lists_every_endpoint() {
        let g = sample_graph();
        assert_eq!(g.vertices(), vec![1, 2, 3, 4, 5, 6, 7]);
    }
}
