//! Graph-stream data model (Definition 1 of the paper).
//!
//! A graph stream is an unbounded sequence of items `(⟨s, d⟩; t; w)`.  This module provides
//! the item type [`StreamEdge`], a [`GraphStream`] abstraction over any source of such items
//! (in-memory vectors, generators, files), and window utilities used by the subgraph-matching
//! experiment (Fig. 15), which queries fixed-size windows of the stream.

use crate::types::{EdgeKey, Timestamp, VertexId, Weight};
use serde::{Deserialize, Serialize};

/// A single item of a graph stream: a directed edge with a timestamp and a weight.
///
/// Items with negative weight encode deletions of previously inserted weight
/// (Definition 1: "An item with w < 0 means deleting a former data item").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StreamEdge {
    /// Source vertex of the edge.
    pub source: VertexId,
    /// Destination vertex of the edge.
    pub destination: VertexId,
    /// Timestamp of the item.  Items are fed to summaries in timestamp order.
    pub timestamp: Timestamp,
    /// Weight contribution of this item.
    pub weight: Weight,
}

impl StreamEdge {
    /// Creates a new stream item.
    pub const fn new(
        source: VertexId,
        destination: VertexId,
        timestamp: Timestamp,
        weight: Weight,
    ) -> Self {
        Self { source, destination, timestamp, weight }
    }

    /// The `(source, destination)` key this item contributes weight to.
    pub const fn key(&self) -> EdgeKey {
        EdgeKey::new(self.source, self.destination)
    }

    /// Returns a copy of this item representing the deletion of its weight.
    pub const fn deletion(&self, timestamp: Timestamp) -> Self {
        Self { source: self.source, destination: self.destination, timestamp, weight: -self.weight }
    }
}

/// A source of graph-stream items.
///
/// The trait is deliberately minimal — it is an `Iterator` of [`StreamEdge`]s plus an
/// optional size hint of distinct structural properties that generators can expose so the
/// experiment harness can size sketches the same way the paper does (matrix width relative
/// to `|E|`).
pub trait GraphStream: Iterator<Item = StreamEdge> {
    /// Number of items the stream will yield, if known.
    fn len_hint(&self) -> Option<usize> {
        None
    }
}

/// An in-memory graph stream backed by a vector of items.
#[derive(Debug, Clone, Default)]
pub struct VecStream {
    items: Vec<StreamEdge>,
    cursor: usize,
}

impl VecStream {
    /// Creates a stream over the given items (yielded in the given order).
    pub fn new(items: Vec<StreamEdge>) -> Self {
        Self { items, cursor: 0 }
    }

    /// Creates a stream and sorts the items by timestamp first, as done for the
    /// lkml-reply and CAIDA datasets in the paper ("we feed the data items to the data
    /// structure according to their timestamps").
    pub fn new_sorted_by_timestamp(mut items: Vec<StreamEdge>) -> Self {
        items.sort_by_key(|e| e.timestamp);
        Self::new(items)
    }

    /// Read-only access to the underlying items.
    pub fn items(&self) -> &[StreamEdge] {
        &self.items
    }

    /// Number of items in the stream.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the stream holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Resets the stream to its beginning so it can be replayed.
    pub fn reset(&mut self) {
        self.cursor = 0;
    }

    /// Consumes the stream and returns the underlying items.
    pub fn into_items(self) -> Vec<StreamEdge> {
        self.items
    }
}

impl Iterator for VecStream {
    type Item = StreamEdge;

    fn next(&mut self) -> Option<StreamEdge> {
        let item = self.items.get(self.cursor).copied();
        if item.is_some() {
            self.cursor += 1;
        }
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.items.len() - self.cursor;
        (remaining, Some(remaining))
    }
}

impl GraphStream for VecStream {
    fn len_hint(&self) -> Option<usize> {
        Some(self.items.len())
    }
}

impl<I: Iterator<Item = StreamEdge>> GraphStream for std::iter::Peekable<I> {}

/// Iterator over fixed-size, non-overlapping windows of a stream, used by the
/// subgraph-matching experiment (Fig. 15) which "search\[es\] for subgraphs in windows of the
/// data stream".
#[derive(Debug, Clone)]
pub struct StreamWindows {
    items: Vec<StreamEdge>,
    window_size: usize,
    offset: usize,
}

impl StreamWindows {
    /// Creates a window iterator over `items` with the given `window_size` (> 0).
    ///
    /// # Panics
    /// Panics if `window_size == 0`.
    pub fn new(items: Vec<StreamEdge>, window_size: usize) -> Self {
        assert!(window_size > 0, "window_size must be positive");
        Self { items, window_size, offset: 0 }
    }

    /// Number of complete or partial windows remaining.
    pub fn remaining_windows(&self) -> usize {
        let remaining = self.items.len().saturating_sub(self.offset);
        remaining.div_ceil(self.window_size)
    }
}

impl Iterator for StreamWindows {
    type Item = Vec<StreamEdge>;

    fn next(&mut self) -> Option<Vec<StreamEdge>> {
        if self.offset >= self.items.len() {
            return None;
        }
        let end = (self.offset + self.window_size).min(self.items.len());
        let window = self.items[self.offset..end].to_vec();
        self.offset = end;
        Some(window)
    }
}

/// Aggregates a slice of stream items into `(EdgeKey, total weight)` pairs — the exact
/// streaming graph induced by the items (used for ground truth in experiments).
pub fn aggregate_items(items: &[StreamEdge]) -> Vec<(EdgeKey, Weight)> {
    let mut map: std::collections::HashMap<EdgeKey, Weight> = std::collections::HashMap::new();
    for item in items {
        *map.entry(item.key()).or_insert(0) += item.weight;
    }
    let mut out: Vec<(EdgeKey, Weight)> = map.into_iter().collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_items() -> Vec<StreamEdge> {
        vec![
            StreamEdge::new(1, 2, 0, 1),
            StreamEdge::new(1, 3, 1, 2),
            StreamEdge::new(1, 2, 2, 3),
            StreamEdge::new(4, 1, 3, 5),
        ]
    }

    #[test]
    fn vec_stream_yields_in_order() {
        let stream = VecStream::new(sample_items());
        let collected: Vec<_> = stream.collect();
        assert_eq!(collected, sample_items());
    }

    #[test]
    fn vec_stream_len_hint_matches_len() {
        let stream = VecStream::new(sample_items());
        assert_eq!(stream.len_hint(), Some(4));
        assert_eq!(stream.len(), 4);
        assert!(!stream.is_empty());
    }

    #[test]
    fn vec_stream_reset_replays_items() {
        let mut stream = VecStream::new(sample_items());
        let first: Vec<_> = stream.by_ref().collect();
        stream.reset();
        let second: Vec<_> = stream.collect();
        assert_eq!(first, second);
    }

    #[test]
    fn sorted_stream_orders_by_timestamp() {
        let items = vec![
            StreamEdge::new(1, 2, 5, 1),
            StreamEdge::new(3, 4, 1, 1),
            StreamEdge::new(5, 6, 3, 1),
        ];
        let stream = VecStream::new_sorted_by_timestamp(items);
        let ts: Vec<_> = stream.map(|e| e.timestamp).collect();
        assert_eq!(ts, vec![1, 3, 5]);
    }

    #[test]
    fn deletion_negates_weight() {
        let e = StreamEdge::new(1, 2, 0, 7);
        let d = e.deletion(9);
        assert_eq!(d.weight, -7);
        assert_eq!(d.timestamp, 9);
        assert_eq!(d.key(), e.key());
    }

    #[test]
    fn windows_partition_the_stream() {
        let items = sample_items();
        let windows: Vec<_> = StreamWindows::new(items.clone(), 3).collect();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].len(), 3);
        assert_eq!(windows[1].len(), 1);
        let rejoined: Vec<_> = windows.into_iter().flatten().collect();
        assert_eq!(rejoined, items);
    }

    #[test]
    fn remaining_windows_counts_partial_windows() {
        let windows = StreamWindows::new(sample_items(), 3);
        assert_eq!(windows.remaining_windows(), 2);
    }

    #[test]
    #[should_panic(expected = "window_size must be positive")]
    fn zero_window_size_panics() {
        let _ = StreamWindows::new(sample_items(), 0);
    }

    #[test]
    fn aggregate_sums_duplicate_keys() {
        let agg = aggregate_items(&sample_items());
        assert!(agg.contains(&(EdgeKey::new(1, 2), 4)));
        assert!(agg.contains(&(EdgeKey::new(1, 3), 2)));
        assert!(agg.contains(&(EdgeKey::new(4, 1), 5)));
        assert_eq!(agg.len(), 3);
    }
}
