//! Compound graph queries built from the three query primitives.
//!
//! Section III of the paper argues that once a structure supports edge queries, 1-hop
//! successor queries and 1-hop precursor queries, "all kinds of queries and algorithms can
//! be supported" — either by reconstructing the graph or by invoking the primitives lazily
//! during the algorithm.  This module is the concrete realisation of that claim: every
//! function takes a `&dyn` [`SummaryRead`](crate::summary::SummaryRead), so the same
//! (un-monomorphised) code runs on the exact graph, on GSS, on TCM and on gMatrix, and the
//! experiments compare their answers.
//!
//! * [`node_query`] — weighted out/in degree (the node query of Fig. 11).
//! * [`traversal`] — BFS, reachability (Fig. 12), k-hop neighbourhoods, connected reach sets.
//! * [`triangles`] — triangle counting through the primitives (Fig. 14).
//! * [`matching`] — VF2-style subgraph matching (Fig. 15).
//! * [`reconstruct`] — full graph reconstruction from a node universe.

pub mod matching;
pub mod node_query;
pub mod reconstruct;
pub mod traversal;
pub mod triangles;

pub use matching::{count_pattern_matches, find_pattern_matches, PatternGraph};
pub use node_query::{node_in_weight, node_out_weight};
pub use reconstruct::reconstruct_graph;
pub use traversal::{
    bfs_reachable_set, is_reachable, is_reachable_bounded, k_hop_successors, shortest_hop_distance,
};
pub use triangles::{count_triangles, local_triangle_count};
