//! Triangle counting through the query primitives (Fig. 14).
//!
//! The paper compares GSS against TRIEST on the number of triangles in the (undirected
//! interpretation of the) graph.  On a summary, the count is computed from the primitives
//! alone: for every vertex in the queried universe we obtain its undirected neighbourhood
//! (successors ∪ precursors) and count, for every pair of neighbours, whether the closing
//! edge exists in either direction.  Each triangle is found three times (once per corner),
//! so the total is divided by three.

use crate::summary::SummaryRead;
use crate::types::VertexId;
use std::collections::HashSet;

/// Returns the undirected neighbourhood of `vertex` (successors ∪ precursors, minus the
/// vertex itself).
fn undirected_neighbours(summary: &dyn SummaryRead, vertex: VertexId) -> Vec<VertexId> {
    let mut set: HashSet<VertexId> = summary.successors(vertex).into_iter().collect();
    set.extend(summary.precursors(vertex));
    set.remove(&vertex);
    let mut out: Vec<VertexId> = set.into_iter().collect();
    out.sort_unstable();
    out
}

/// Returns `true` if the summary reports an edge between `a` and `b` in either direction.
fn undirected_edge_exists(summary: &dyn SummaryRead, a: VertexId, b: VertexId) -> bool {
    summary.edge_weight(a, b).is_some() || summary.edge_weight(b, a).is_some()
}

/// Counts the triangles of the undirected interpretation of the graph restricted to
/// `vertices` (the node universe known to the application, e.g. the interner contents or the
/// exact vertex list of the evaluated dataset).
pub fn count_triangles(summary: &dyn SummaryRead, vertices: &[VertexId]) -> u64 {
    let universe: HashSet<VertexId> = vertices.iter().copied().collect();
    let mut total: u64 = 0;
    for &v in vertices {
        let neighbours: Vec<VertexId> = undirected_neighbours(summary, v)
            .into_iter()
            .filter(|n| universe.contains(n))
            .collect();
        for (i, &a) in neighbours.iter().enumerate() {
            for &b in &neighbours[i + 1..] {
                if undirected_edge_exists(summary, a, b) {
                    total += 1;
                }
            }
        }
    }
    total / 3
}

/// Number of triangles incident to `vertex` (its local triangle count).
pub fn local_triangle_count(summary: &dyn SummaryRead, vertex: VertexId) -> u64 {
    let neighbours = undirected_neighbours(summary, vertex);
    let mut count = 0;
    for (i, &a) in neighbours.iter().enumerate() {
        for &b in &neighbours[i + 1..] {
            if undirected_edge_exists(summary, a, b) {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::AdjacencyListGraph;
    use crate::summary::SummaryWrite;

    /// Two triangles sharing the edge (1,2): {1,2,3} and {1,2,4}, plus a pendant vertex 5.
    fn two_triangle_graph() -> AdjacencyListGraph {
        let mut g = AdjacencyListGraph::new();
        g.insert(1, 2, 1);
        g.insert(2, 3, 1);
        g.insert(3, 1, 1);
        g.insert(2, 4, 1);
        g.insert(4, 1, 1);
        g.insert(4, 5, 1);
        g
    }

    #[test]
    fn counts_triangles_in_directed_graph_as_undirected() {
        let g = two_triangle_graph();
        let vertices = g.vertices();
        assert_eq!(count_triangles(&g, &vertices), 2);
    }

    #[test]
    fn empty_and_acyclic_graphs_have_no_triangles() {
        let mut g = AdjacencyListGraph::new();
        assert_eq!(count_triangles(&g, &[]), 0);
        g.insert(1, 2, 1);
        g.insert(2, 3, 1);
        assert_eq!(count_triangles(&g, &g.vertices()), 0);
    }

    #[test]
    fn local_counts_attribute_triangles_to_their_corners() {
        let g = two_triangle_graph();
        assert_eq!(local_triangle_count(&g, 1), 2);
        assert_eq!(local_triangle_count(&g, 3), 1);
        assert_eq!(local_triangle_count(&g, 5), 0);
    }

    #[test]
    fn restricting_the_universe_restricts_the_count() {
        let g = two_triangle_graph();
        // Without vertex 4 only the {1,2,3} triangle remains.
        assert_eq!(count_triangles(&g, &[1, 2, 3, 5]), 1);
    }

    #[test]
    fn duplicate_edges_do_not_create_duplicate_triangles() {
        let mut g = two_triangle_graph();
        g.insert(1, 2, 5);
        g.insert(2, 1, 3);
        assert_eq!(count_triangles(&g, &g.vertices()), 2);
    }
}
