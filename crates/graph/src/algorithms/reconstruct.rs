//! Full graph reconstruction from the primitives.
//!
//! Section III: "With these primitives, we can re-construct the entire graph.  We can find
//! all the node IDs in the hash table.  Then by carrying out 1-hop successor queries …for
//! each node, we can find all the edges in the graph.  The weight of the edges can be
//! retrieved by the edge queries."  This module implements exactly that procedure, given the
//! node universe (normally the contents of the ID hash table / interner).

use crate::exact::AdjacencyListGraph;
use crate::summary::{SummaryRead, SummaryWrite};
use crate::types::VertexId;

/// Reconstructs an exact [`AdjacencyListGraph`] of everything `summary` reports for the
/// vertices in `universe`: one successor query per vertex, one edge query per reported edge.
///
/// For an approximate summary the reconstruction may contain extra edges (false positives)
/// and over-estimated weights, but always contains every true edge among `universe`.
pub fn reconstruct_graph(summary: &dyn SummaryRead, universe: &[VertexId]) -> AdjacencyListGraph {
    let mut graph = AdjacencyListGraph::with_capacity(universe.len());
    for &v in universe {
        for succ in summary.successors(v) {
            if let Some(weight) = summary.edge_weight(v, succ) {
                graph.insert(v, succ, weight);
            }
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::SummaryWrite;

    #[test]
    fn reconstruction_of_exact_graph_is_identical() {
        let mut original = AdjacencyListGraph::new();
        original.insert(1, 2, 3);
        original.insert(2, 3, 4);
        original.insert(3, 1, 5);
        original.insert(1, 3, 7);

        let rebuilt = reconstruct_graph(&original, &original.vertices());
        assert_eq!(rebuilt.edge_count(), original.edge_count());
        for (key, weight) in original.edges() {
            assert_eq!(rebuilt.edge_weight(key.source, key.destination), Some(weight));
        }
    }

    #[test]
    fn reconstruction_restricted_to_universe() {
        let mut original = AdjacencyListGraph::new();
        original.insert(1, 2, 3);
        original.insert(5, 6, 4);
        let rebuilt = reconstruct_graph(&original, &[1, 2]);
        assert_eq!(rebuilt.edge_count(), 1);
        assert_eq!(rebuilt.edge_weight(5, 6), None);
    }

    #[test]
    fn reconstruction_of_empty_universe_is_empty() {
        let original = AdjacencyListGraph::new();
        let rebuilt = reconstruct_graph(&original, &[]);
        assert_eq!(rebuilt.edge_count(), 0);
        assert_eq!(rebuilt.vertex_count(), 0);
    }
}
