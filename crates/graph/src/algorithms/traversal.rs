//! Traversal queries: BFS, reachability and k-hop neighbourhoods.
//!
//! Reachability (Fig. 12) is the paper's showcase compound query: it repeatedly invokes the
//! 1-hop successor primitive.  Because approximate summaries only have false-positive
//! neighbours, reachability answers have no false negatives — if `d` is truly reachable from
//! `s`, every summary says "yes"; the accuracy metric is therefore *true-negative recall*
//! on pairs known to be unreachable.

use crate::summary::SummaryRead;
use crate::types::VertexId;
use std::collections::{HashMap, HashSet, VecDeque};

/// Upper bound on the number of vertices a traversal will visit before giving up.
///
/// A badly over-approximating summary (e.g. TCM at small width) can make almost every vertex
/// appear reachable from every other; the bound keeps experiments terminating in reasonable
/// time without changing answers for well-behaved summaries.
pub const DEFAULT_TRAVERSAL_LIMIT: usize = 5_000_000;

/// Returns `true` if `summary` reports a directed path from `source` to `destination`.
pub fn is_reachable(summary: &dyn SummaryRead, source: VertexId, destination: VertexId) -> bool {
    is_reachable_bounded(summary, source, destination, DEFAULT_TRAVERSAL_LIMIT)
}

/// [`is_reachable`] with an explicit bound on visited vertices.
pub fn is_reachable_bounded(
    summary: &dyn SummaryRead,
    source: VertexId,
    destination: VertexId,
    limit: usize,
) -> bool {
    if source == destination {
        return true;
    }
    let mut visited: HashSet<VertexId> = HashSet::new();
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    visited.insert(source);
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        for next in summary.successors(v) {
            if next == destination {
                return true;
            }
            if visited.len() >= limit {
                return false;
            }
            if visited.insert(next) {
                queue.push_back(next);
            }
        }
    }
    false
}

/// Returns the set of vertices reachable from `source` (including `source` itself), visiting
/// at most `limit` vertices.
pub fn bfs_reachable_set(
    summary: &dyn SummaryRead,
    source: VertexId,
    limit: usize,
) -> HashSet<VertexId> {
    let mut visited: HashSet<VertexId> = HashSet::new();
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    visited.insert(source);
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        if visited.len() >= limit {
            break;
        }
        for next in summary.successors(v) {
            if visited.len() >= limit {
                break;
            }
            if visited.insert(next) {
                queue.push_back(next);
            }
        }
    }
    visited
}

/// Returns the vertices whose shortest hop distance from `source` is exactly `k`,
/// together with all vertices at distance `< k` (the full k-hop neighbourhood).
pub fn k_hop_successors(
    summary: &dyn SummaryRead,
    source: VertexId,
    k: usize,
) -> HashSet<VertexId> {
    let mut frontier: HashSet<VertexId> = HashSet::from([source]);
    let mut visited: HashSet<VertexId> = HashSet::from([source]);
    for _ in 0..k {
        let mut next_frontier: HashSet<VertexId> = HashSet::new();
        for &v in &frontier {
            for next in summary.successors(v) {
                if visited.insert(next) {
                    next_frontier.insert(next);
                }
            }
        }
        if next_frontier.is_empty() {
            break;
        }
        frontier = next_frontier;
    }
    visited.remove(&source);
    visited
}

/// Returns the shortest hop distance from `source` to `destination`, or `None` if no path is
/// found within `limit` visited vertices.
pub fn shortest_hop_distance(
    summary: &dyn SummaryRead,
    source: VertexId,
    destination: VertexId,
    limit: usize,
) -> Option<usize> {
    if source == destination {
        return Some(0);
    }
    let mut dist: HashMap<VertexId, usize> = HashMap::new();
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    dist.insert(source, 0);
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[&v];
        for next in summary.successors(v) {
            if next == destination {
                return Some(d + 1);
            }
            if dist.len() >= limit {
                return None;
            }
            if let std::collections::hash_map::Entry::Vacant(slot) = dist.entry(next) {
                slot.insert(d + 1);
                queue.push_back(next);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::AdjacencyListGraph;
    use crate::summary::SummaryWrite;

    /// A chain 1 -> 2 -> 3 -> 4 plus a disconnected vertex 10 -> 11.
    fn chain_graph() -> AdjacencyListGraph {
        let mut g = AdjacencyListGraph::new();
        g.insert(1, 2, 1);
        g.insert(2, 3, 1);
        g.insert(3, 4, 1);
        g.insert(10, 11, 1);
        g
    }

    #[test]
    fn reachability_follows_chains() {
        let g = chain_graph();
        assert!(is_reachable(&g, 1, 4));
        assert!(is_reachable(&g, 2, 4));
        assert!(!is_reachable(&g, 4, 1));
        assert!(!is_reachable(&g, 1, 11));
        assert!(is_reachable(&g, 3, 3));
    }

    #[test]
    fn bounded_reachability_respects_limit() {
        let g = chain_graph();
        // With a visit budget of 1 vertex we can still discover direct neighbours but not
        // the end of the chain.
        assert!(!is_reachable_bounded(&g, 1, 4, 1));
        assert!(is_reachable_bounded(&g, 1, 2, 1));
    }

    #[test]
    fn reachable_set_contains_all_downstream_vertices() {
        let g = chain_graph();
        let set = bfs_reachable_set(&g, 1, 1000);
        assert_eq!(set, HashSet::from([1, 2, 3, 4]));
    }

    #[test]
    fn k_hop_neighbourhood_grows_with_k() {
        let g = chain_graph();
        assert_eq!(k_hop_successors(&g, 1, 1), HashSet::from([2]));
        assert_eq!(k_hop_successors(&g, 1, 2), HashSet::from([2, 3]));
        assert_eq!(k_hop_successors(&g, 1, 10), HashSet::from([2, 3, 4]));
        assert!(k_hop_successors(&g, 4, 3).is_empty());
    }

    #[test]
    fn shortest_distance_counts_hops() {
        let g = chain_graph();
        assert_eq!(shortest_hop_distance(&g, 1, 4, 1000), Some(3));
        assert_eq!(shortest_hop_distance(&g, 1, 1, 1000), Some(0));
        assert_eq!(shortest_hop_distance(&g, 4, 1, 1000), None);
    }

    #[test]
    fn cycles_terminate() {
        let mut g = AdjacencyListGraph::new();
        g.insert(1, 2, 1);
        g.insert(2, 1, 1);
        assert!(is_reachable(&g, 1, 2));
        assert!(!is_reachable(&g, 1, 3));
        assert_eq!(bfs_reachable_set(&g, 1, 1000), HashSet::from([1, 2]));
    }
}
