//! Node queries: aggregated weight of all out-going (or in-coming) edges of a vertex.
//!
//! The paper evaluates this compound query in Section VII-E (Fig. 11): "A node query for a
//! node v is to compute the summary of the weights of all edges with source node v."  On a
//! summary it is answered by a 1-hop successor query followed by one edge query per reported
//! successor; over-estimation can therefore come both from extra successors (false
//! positives) and from over-estimated edge weights.

use crate::summary::SummaryRead;
use crate::types::{VertexId, Weight};

/// Total weight of all out-going edges of `vertex`, as reported by `summary`.
pub fn node_out_weight(summary: &dyn SummaryRead, vertex: VertexId) -> Weight {
    summary
        .successors(vertex)
        .into_iter()
        .filter_map(|succ| summary.edge_weight(vertex, succ))
        .sum()
}

/// Total weight of all in-coming edges of `vertex`, as reported by `summary`.
pub fn node_in_weight(summary: &dyn SummaryRead, vertex: VertexId) -> Weight {
    summary
        .precursors(vertex)
        .into_iter()
        .filter_map(|pred| summary.edge_weight(pred, vertex))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::AdjacencyListGraph;
    use crate::summary::SummaryWrite;

    fn graph() -> AdjacencyListGraph {
        let mut g = AdjacencyListGraph::new();
        g.insert(1, 2, 3);
        g.insert(1, 3, 4);
        g.insert(2, 3, 5);
        g.insert(3, 1, 7);
        g
    }

    #[test]
    fn out_weight_sums_all_outgoing_edges() {
        let g = graph();
        assert_eq!(node_out_weight(&g, 1), 7);
        assert_eq!(node_out_weight(&g, 2), 5);
        assert_eq!(node_out_weight(&g, 99), 0);
    }

    #[test]
    fn in_weight_sums_all_incoming_edges() {
        let g = graph();
        assert_eq!(node_in_weight(&g, 3), 9);
        assert_eq!(node_in_weight(&g, 1), 7);
        assert_eq!(node_in_weight(&g, 99), 0);
    }

    #[test]
    fn node_query_on_exact_graph_matches_dedicated_method() {
        let g = graph();
        for v in 1..=3 {
            assert_eq!(node_out_weight(&g, v), g.node_out_weight(v));
            assert_eq!(node_in_weight(&g, v), g.node_in_weight(v));
        }
    }
}
