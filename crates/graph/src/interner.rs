//! Interning of external node identifiers.
//!
//! The paper keeps a hash table of `⟨H(v), v⟩` pairs next to the sketch so that queries can
//! translate between original node IDs (IP addresses, e-mail addresses, paper IDs…) and the
//! hashed space.  In this workspace the sketches operate on dense [`VertexId`]s; the
//! [`StringInterner`] provides the external-ID ↔ dense-ID mapping for applications (see the
//! `network_monitoring` and `social_recommendation` examples).

use crate::types::VertexId;
use std::collections::HashMap;

/// Bidirectional map between external string identifiers and dense [`VertexId`]s.
///
/// IDs are assigned densely starting at 0 in first-seen order, which also makes the interner
/// usable as the node universe for experiments (every vertex in `0..len()` exists).
#[derive(Debug, Clone, Default)]
pub struct StringInterner {
    to_id: HashMap<String, VertexId>,
    to_name: Vec<String>,
}

impl StringInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the dense id for `name`, assigning a fresh one if the name is new.
    pub fn intern(&mut self, name: &str) -> VertexId {
        if let Some(&id) = self.to_id.get(name) {
            return id;
        }
        let id = self.to_name.len() as VertexId;
        self.to_id.insert(name.to_string(), id);
        self.to_name.push(name.to_string());
        id
    }

    /// Returns the dense id for `name` if it was interned before.
    pub fn get(&self, name: &str) -> Option<VertexId> {
        self.to_id.get(name).copied()
    }

    /// Returns the original name for a dense id.
    pub fn resolve(&self, id: VertexId) -> Option<&str> {
        self.to_name.get(id as usize).map(String::as_str)
    }

    /// Resolves a whole set of ids (e.g. a successor set) back to names, skipping unknowns.
    pub fn resolve_all(&self, ids: &[VertexId]) -> Vec<&str> {
        ids.iter().filter_map(|&id| self.resolve(id)).collect()
    }

    /// Number of distinct names interned so far.
    pub fn len(&self) -> usize {
        self.to_name.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.to_name.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &str)> {
        self.to_name.iter().enumerate().map(|(i, name)| (i as VertexId, name.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut interner = StringInterner::new();
        let a = interner.intern("10.0.0.1");
        let b = interner.intern("10.0.0.2");
        let a_again = interner.intern("10.0.0.1");
        assert_eq!(a, a_again);
        assert_ne!(a, b);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered_by_first_seen() {
        let mut interner = StringInterner::new();
        assert_eq!(interner.intern("x"), 0);
        assert_eq!(interner.intern("y"), 1);
        assert_eq!(interner.intern("z"), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut interner = StringInterner::new();
        let id = interner.intern("alice@example.com");
        assert_eq!(interner.resolve(id), Some("alice@example.com"));
        assert_eq!(interner.get("alice@example.com"), Some(id));
        assert_eq!(interner.resolve(99), None);
        assert_eq!(interner.get("unknown"), None);
    }

    #[test]
    fn resolve_all_skips_unknown_ids() {
        let mut interner = StringInterner::new();
        interner.intern("a");
        interner.intern("b");
        assert_eq!(interner.resolve_all(&[1, 7, 0]), vec!["b", "a"]);
    }

    #[test]
    fn iter_yields_pairs_in_order() {
        let mut interner = StringInterner::new();
        interner.intern("a");
        interner.intern("b");
        let pairs: Vec<_> = interner.iter().collect();
        assert_eq!(pairs, vec![(0, "a"), (1, "b")]);
        assert!(!interner.is_empty());
    }
}
