//! # gss-graph — streaming graph substrate
//!
//! This crate provides the substrate that every sketch and baseline in the workspace is
//! built on top of:
//!
//! * [`StreamEdge`] / [`GraphStream`] — the graph-stream data model of
//!   the paper (Definition 1): an unbounded, timestamped sequence of weighted directed edges.
//! * [`SummaryRead`] / [`SummaryWrite`] — the traits capturing the three *graph query
//!   primitives* of Definition 4 (edge query, 1-hop successor query, 1-hop precursor
//!   query) and stream ingestion (per-item, batch and iterator insertion).  GSS, TCM,
//!   gMatrix and the exact adjacency-list graph all implement both halves, so every
//!   compound query and every experiment is written once, against these traits.
//!   [`GraphSummary`] is the blanket-implemented `SummaryRead + SummaryWrite` umbrella.
//! * [`exact::AdjacencyListGraph`] — an exact, loss-less implementation used as ground truth
//!   and as the "adjacency list" baseline of Table I.
//! * [`algorithms`] — compound graph queries written purely in terms of the primitives:
//!   node queries, reachability, k-hop neighbourhoods, triangle counting, subgraph matching
//!   and full graph reconstruction (Section III of the paper argues all of these reduce to
//!   the three primitives).
//! * [`interner::StringInterner`] — maps external identifiers (IP addresses, e-mail
//!   addresses, URLs…) to dense [`VertexId`]s, mirroring the `⟨H(v), v⟩` hash table the
//!   paper keeps next to the sketch.
//!
//! ## Quick start
//!
//! ```
//! use gss_graph::{AdjacencyListGraph, StreamEdge, SummaryRead, SummaryWrite};
//!
//! let mut graph = AdjacencyListGraph::new();
//! graph.insert(1, 2, 3);
//! graph.insert_batch(&[StreamEdge::new(2, 3, 0, 1)]);
//!
//! // The three query primitives of Definition 4…
//! assert_eq!(graph.edge_weight(1, 2), Some(3));
//! assert_eq!(graph.successors(2), vec![3]);
//! assert_eq!(graph.precursors(2), vec![1]);
//!
//! // …and a compound query written against `&dyn SummaryRead`.
//! assert!(gss_graph::algorithms::is_reachable(&graph, 1, 3));
//! ```

pub mod algorithms;
pub mod exact;
pub mod interner;
pub mod stream;
pub mod summary;
pub mod types;

pub use exact::AdjacencyListGraph;
pub use interner::StringInterner;
pub use stream::{GraphStream, StreamEdge, StreamWindows, VecStream};
pub use summary::{GraphSummary, SummaryRead, SummaryStats, SummaryWrite};
pub use types::{EdgeKey, Timestamp, VertexId, Weight};
