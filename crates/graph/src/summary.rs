//! The summary traits: [`SummaryRead`], [`SummaryWrite`] and the [`GraphSummary`] umbrella.
//!
//! Every summarization structure in this workspace — the GSS sketch, the TCM and gMatrix
//! baselines, and the exact adjacency-list graph — supports the three graph query
//! primitives of Definition 4 plus edge insertion.  The API is split along the
//! read/write axis:
//!
//! * [`SummaryRead`] — the three query primitives (edge weight, 1-hop successors, 1-hop
//!   precursors) plus structural statistics.  Every compound query in
//!   [`crate::algorithms`] takes `&dyn SummaryRead`, which is exactly the argument the
//!   paper makes: once the three primitives are supported, "almost all algorithms for
//!   graphs can be implemented with these primitives".
//! * [`SummaryWrite`] — stream ingestion: per-item [`insert`](SummaryWrite::insert), the
//!   batch entry point [`insert_batch`](SummaryWrite::insert_batch) (which structures such
//!   as `gss_core::GssSketch` override to amortise hashing and candidate probing), and an
//!   object-safe [`insert_stream`](SummaryWrite::insert_stream).
//! * [`GraphSummary`] — the umbrella `SummaryRead + SummaryWrite`, blanket-implemented for
//!   every type that implements both, so existing `S: GraphSummary` bounds keep working.
//!
//! Both traits are object-safe: write-only summaries (e.g. `gss_baselines::GSketch`, which
//! supports edge-weight estimation but no topology queries) can implement `SummaryWrite`
//! alone, and `Box<dyn GraphSummary>` supports streaming ingestion.

use crate::stream::StreamEdge;
use crate::types::{VertexId, Weight};
use serde::{Deserialize, Serialize};

/// Size and occupancy statistics reported by a summary, used for the memory accounting in
/// the experiments (equal-memory comparisons, buffer percentage of Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Total bytes of heap the structure currently occupies (approximate, structural).
    pub bytes: usize,
    /// Number of stream items inserted so far.
    pub items_inserted: u64,
    /// Number of distinct slots/buckets/entries the structure maintains.
    pub slots: usize,
    /// Number of slots currently occupied.
    pub occupied_slots: usize,
    /// Number of edges that overflowed into an auxiliary buffer (GSS-specific; 0 otherwise).
    pub buffered_edges: usize,
}

impl SummaryStats {
    /// Fraction of slots currently occupied, in `[0, 1]`.
    pub fn load_factor(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.occupied_slots as f64 / self.slots as f64
        }
    }

    /// Field-wise sum of two stat snapshots, used when aggregating over shards.
    pub fn merged_with(&self, other: &SummaryStats) -> SummaryStats {
        SummaryStats {
            bytes: self.bytes + other.bytes,
            items_inserted: self.items_inserted + other.items_inserted,
            slots: self.slots + other.slots,
            occupied_slots: self.occupied_slots + other.occupied_slots,
            buffered_edges: self.buffered_edges + other.buffered_edges,
        }
    }
}

/// The read half of a graph-stream summary: the three query primitives of Definition 4.
///
/// Implementations may be approximate.  The contract mirrors the paper:
///
/// * [`edge_weight`](SummaryRead::edge_weight) returns `None` when the edge is reported
///   absent (the paper returns `-1`); approximate structures may over-estimate weights and
///   may report false positives, but never false negatives for structures compared in the
///   paper (all errors are one-sided when weights are non-negative).
/// * [`successors`](SummaryRead::successors) / [`precursors`](SummaryRead::precursors)
///   return the 1-hop out/in neighbourhoods in the *original* vertex-id space; approximate
///   structures may include extra vertices (false positives) but must include every true
///   neighbour.
///
/// The trait is object-safe; compound queries ([`crate::algorithms`]) take
/// `&dyn SummaryRead`.
pub trait SummaryRead {
    /// Returns the accumulated weight of edge `(source, destination)`, or `None` if the
    /// structure reports the edge as absent.
    fn edge_weight(&self, source: VertexId, destination: VertexId) -> Option<Weight>;

    /// Returns the set of vertices reported as 1-hop reachable from `vertex`
    /// (the 1-hop successor query primitive).
    fn successors(&self, vertex: VertexId) -> Vec<VertexId>;

    /// Returns the set of vertices reported as reaching `vertex` in one hop
    /// (the 1-hop precursor query primitive).
    fn precursors(&self, vertex: VertexId) -> Vec<VertexId>;

    /// Structural statistics (memory, occupancy).  Implementations should make this cheap.
    fn stats(&self) -> SummaryStats {
        SummaryStats::default()
    }

    /// Human-readable name used in experiment reports (e.g. `"GSS(fsize=16)"`).
    fn name(&self) -> String {
        std::any::type_name::<Self>().to_string()
    }
}

/// The write half of a graph-stream summary: stream-item ingestion.
///
/// The batch entry points exist so implementations can amortise per-item work:
/// [`insert_batch`](SummaryWrite::insert_batch) defaults to a per-item loop but structures
/// like the GSS sketch override it to hash each distinct endpoint once, reuse address
/// sequences across items sharing an endpoint, and fold duplicate `(source, destination)`
/// keys before probing.  A batched insert must be **observationally identical** to
/// inserting the same items one at a time, in order (same edge weights, same
/// successor/precursor sets, same item accounting).
///
/// The trait is object-safe — including [`insert_stream`](SummaryWrite::insert_stream),
/// which takes a `&mut dyn Iterator` so that streaming into a `Box<dyn GraphSummary>`
/// works.
pub trait SummaryWrite {
    /// Inserts one stream item, accumulating `weight` onto edge `(source, destination)`.
    fn insert(&mut self, source: VertexId, destination: VertexId, weight: Weight);

    /// Inserts a whole stream item (uses its weight; convenience wrapper).
    fn insert_item(&mut self, item: &StreamEdge) {
        self.insert(item.source, item.destination, item.weight);
    }

    /// Inserts a batch of stream items, in order.
    ///
    /// Equivalent to calling [`insert_item`](SummaryWrite::insert_item) for each item;
    /// implementations may (and should) amortise shared work across the batch.
    fn insert_batch(&mut self, items: &[StreamEdge]) {
        for item in items {
            self.insert_item(item);
        }
    }

    /// Inserts every item yielded by an iterator, in order.
    ///
    /// Object-safe (callable through `&mut dyn SummaryWrite`); call as
    /// `summary.insert_stream(&mut items.into_iter())`.
    fn insert_stream(&mut self, items: &mut dyn Iterator<Item = StreamEdge>) {
        for item in items {
            self.insert_item(&item);
        }
    }
}

/// A graph-stream summary supporting both ingestion and the three query primitives.
///
/// Blanket-implemented for every `SummaryRead + SummaryWrite` type, so it cannot be
/// implemented directly — implement the two halves instead.  Existing call sites that
/// bound on `S: GraphSummary` (or box a `dyn GraphSummary`) keep compiling.
pub trait GraphSummary: SummaryRead + SummaryWrite {}

impl<T: SummaryRead + SummaryWrite + ?Sized> GraphSummary for T {}

impl<T: SummaryRead + ?Sized> SummaryRead for Box<T> {
    fn edge_weight(&self, source: VertexId, destination: VertexId) -> Option<Weight> {
        (**self).edge_weight(source, destination)
    }

    fn successors(&self, vertex: VertexId) -> Vec<VertexId> {
        (**self).successors(vertex)
    }

    fn precursors(&self, vertex: VertexId) -> Vec<VertexId> {
        (**self).precursors(vertex)
    }

    fn stats(&self) -> SummaryStats {
        (**self).stats()
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

impl<T: SummaryWrite + ?Sized> SummaryWrite for Box<T> {
    fn insert(&mut self, source: VertexId, destination: VertexId, weight: Weight) {
        (**self).insert(source, destination, weight);
    }

    fn insert_item(&mut self, item: &StreamEdge) {
        (**self).insert_item(item);
    }

    fn insert_batch(&mut self, items: &[StreamEdge]) {
        (**self).insert_batch(items);
    }

    fn insert_stream(&mut self, items: &mut dyn Iterator<Item = StreamEdge>) {
        (**self).insert_stream(items);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::AdjacencyListGraph;

    #[test]
    fn load_factor_handles_empty_structure() {
        let stats = SummaryStats::default();
        assert_eq!(stats.load_factor(), 0.0);
    }

    #[test]
    fn load_factor_is_fraction_of_occupied_slots() {
        let stats = SummaryStats { slots: 10, occupied_slots: 4, ..Default::default() };
        assert!((stats.load_factor() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn merged_stats_sum_every_field() {
        let a = SummaryStats {
            bytes: 10,
            items_inserted: 2,
            slots: 8,
            occupied_slots: 3,
            buffered_edges: 1,
        };
        let merged = a.merged_with(&a);
        assert_eq!(merged.bytes, 20);
        assert_eq!(merged.items_inserted, 4);
        assert_eq!(merged.slots, 16);
        assert_eq!(merged.occupied_slots, 6);
        assert_eq!(merged.buffered_edges, 2);
    }

    #[test]
    fn boxed_summary_delegates() {
        let mut graph: Box<dyn GraphSummary> = Box::new(AdjacencyListGraph::new());
        graph.insert(1, 2, 5);
        assert_eq!(graph.edge_weight(1, 2), Some(5));
        assert_eq!(graph.successors(1), vec![2]);
        assert_eq!(graph.precursors(2), vec![1]);
    }

    #[test]
    fn insert_stream_accumulates_all_items() {
        let mut graph = AdjacencyListGraph::new();
        let items = vec![StreamEdge::new(1, 2, 0, 1), StreamEdge::new(1, 2, 1, 2)];
        graph.insert_stream(&mut items.into_iter());
        assert_eq!(graph.edge_weight(1, 2), Some(3));
    }

    #[test]
    fn streaming_into_a_boxed_dyn_summary_works() {
        // The regression this trait split fixes: `insert_stream` used to carry a
        // `Self: Sized` bound, making it unusable through `Box<dyn GraphSummary>`.
        let mut boxed: Box<dyn GraphSummary> = Box::new(AdjacencyListGraph::new());
        let items = vec![
            StreamEdge::new(1, 2, 0, 1),
            StreamEdge::new(2, 3, 1, 4),
            StreamEdge::new(1, 2, 2, 2),
        ];
        boxed.insert_stream(&mut items.into_iter());
        assert_eq!(boxed.edge_weight(1, 2), Some(3));
        assert_eq!(boxed.edge_weight(2, 3), Some(4));
        assert_eq!(boxed.stats().items_inserted, 3);
    }

    #[test]
    fn write_only_trait_objects_support_batch_ingest() {
        let mut graph = AdjacencyListGraph::new();
        {
            let writer: &mut dyn SummaryWrite = &mut graph;
            writer.insert_batch(&[StreamEdge::new(7, 8, 0, 5), StreamEdge::new(7, 9, 1, 1)]);
        }
        assert_eq!(graph.edge_weight(7, 8), Some(5));
        assert_eq!(graph.successors(7), vec![8, 9]);
    }

    #[test]
    fn dyn_graph_summary_upcasts_to_its_halves() {
        let mut graph = AdjacencyListGraph::new();
        graph.insert(1, 2, 1);
        let whole: &dyn GraphSummary = &graph;
        let read: &dyn SummaryRead = whole;
        assert_eq!(read.edge_weight(1, 2), Some(1));
    }
}
