//! The [`GraphSummary`] trait: the three graph query primitives of Definition 4.
//!
//! Every summarization structure in this workspace — the GSS sketch, the TCM and gMatrix
//! baselines, and the exact adjacency-list graph — implements this trait.  All compound
//! queries ([`crate::algorithms`]) and every experiment are written against it, which is
//! exactly the argument the paper makes: once the three primitives are supported, "almost
//! all algorithms for graphs can be implemented with these primitives".

use crate::stream::StreamEdge;
use crate::types::{VertexId, Weight};
use serde::{Deserialize, Serialize};

/// Size and occupancy statistics reported by a summary, used for the memory accounting in
/// the experiments (equal-memory comparisons, buffer percentage of Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Total bytes of heap the structure currently occupies (approximate, structural).
    pub bytes: usize,
    /// Number of stream items inserted so far.
    pub items_inserted: u64,
    /// Number of distinct slots/buckets/entries the structure maintains.
    pub slots: usize,
    /// Number of slots currently occupied.
    pub occupied_slots: usize,
    /// Number of edges that overflowed into an auxiliary buffer (GSS-specific; 0 otherwise).
    pub buffered_edges: usize,
}

impl SummaryStats {
    /// Fraction of slots currently occupied, in `[0, 1]`.
    pub fn load_factor(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.occupied_slots as f64 / self.slots as f64
        }
    }
}

/// A graph-stream summary supporting edge insertion and the three query primitives.
///
/// Implementations may be approximate.  The contract mirrors the paper:
///
/// * [`edge_weight`](GraphSummary::edge_weight) returns `None` when the edge is reported
///   absent (the paper returns `-1`); approximate structures may over-estimate weights and
///   may report false positives, but never false negatives for structures compared in the
///   paper (all errors are one-sided when weights are non-negative).
/// * [`successors`](GraphSummary::successors) / [`precursors`](GraphSummary::precursors)
///   return the 1-hop out/in neighbourhoods in the *original* vertex-id space; approximate
///   structures may include extra vertices (false positives) but must include every true
///   neighbour.
pub trait GraphSummary {
    /// Inserts one stream item, accumulating `weight` onto edge `(source, destination)`.
    fn insert(&mut self, source: VertexId, destination: VertexId, weight: Weight);

    /// Returns the accumulated weight of edge `(source, destination)`, or `None` if the
    /// structure reports the edge as absent.
    fn edge_weight(&self, source: VertexId, destination: VertexId) -> Option<Weight>;

    /// Returns the set of vertices reported as 1-hop reachable from `vertex`
    /// (the 1-hop successor query primitive).
    fn successors(&self, vertex: VertexId) -> Vec<VertexId>;

    /// Returns the set of vertices reported as reaching `vertex` in one hop
    /// (the 1-hop precursor query primitive).
    fn precursors(&self, vertex: VertexId) -> Vec<VertexId>;

    /// Inserts a whole stream item (uses its weight; convenience wrapper).
    fn insert_item(&mut self, item: &StreamEdge) {
        self.insert(item.source, item.destination, item.weight);
    }

    /// Inserts every item yielded by an iterator, in order.
    fn insert_stream<I: IntoIterator<Item = StreamEdge>>(&mut self, items: I)
    where
        Self: Sized,
    {
        for item in items {
            self.insert_item(&item);
        }
    }

    /// Structural statistics (memory, occupancy).  Implementations should make this cheap.
    fn stats(&self) -> SummaryStats {
        SummaryStats::default()
    }

    /// Human-readable name used in experiment reports (e.g. `"GSS(fsize=16)"`).
    fn name(&self) -> String {
        std::any::type_name::<Self>().to_string()
    }
}

impl<T: GraphSummary + ?Sized> GraphSummary for Box<T> {
    fn insert(&mut self, source: VertexId, destination: VertexId, weight: Weight) {
        (**self).insert(source, destination, weight);
    }

    fn edge_weight(&self, source: VertexId, destination: VertexId) -> Option<Weight> {
        (**self).edge_weight(source, destination)
    }

    fn successors(&self, vertex: VertexId) -> Vec<VertexId> {
        (**self).successors(vertex)
    }

    fn precursors(&self, vertex: VertexId) -> Vec<VertexId> {
        (**self).precursors(vertex)
    }

    fn stats(&self) -> SummaryStats {
        (**self).stats()
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::AdjacencyListGraph;

    #[test]
    fn load_factor_handles_empty_structure() {
        let stats = SummaryStats::default();
        assert_eq!(stats.load_factor(), 0.0);
    }

    #[test]
    fn load_factor_is_fraction_of_occupied_slots() {
        let stats = SummaryStats { slots: 10, occupied_slots: 4, ..Default::default() };
        assert!((stats.load_factor() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn boxed_summary_delegates() {
        let mut graph: Box<dyn GraphSummary> = Box::new(AdjacencyListGraph::new());
        graph.insert(1, 2, 5);
        assert_eq!(graph.edge_weight(1, 2), Some(5));
        assert_eq!(graph.successors(1), vec![2]);
        assert_eq!(graph.precursors(2), vec![1]);
    }

    #[test]
    fn insert_stream_accumulates_all_items() {
        let mut graph = AdjacencyListGraph::new();
        let items = vec![StreamEdge::new(1, 2, 0, 1), StreamEdge::new(1, 2, 1, 2)];
        graph.insert_stream(items);
        assert_eq!(graph.edge_weight(1, 2), Some(3));
    }
}
