//! Fundamental value types shared across the workspace.
//!
//! The paper models a graph stream as a sequence of items `(⟨s, d⟩; t; w)` (Definition 1).
//! We represent node identifiers as dense `u64`s (external identifiers such as IP addresses
//! are interned via [`crate::interner::StringInterner`]), timestamps as `u64` ticks and
//! weights as signed 64-bit integers so that deletions (negative weights) are expressible.

use serde::{Deserialize, Serialize};

/// Identifier of a vertex in the *original* streaming graph `G`.
///
/// This is the identifier before any hashing; sketches map it to a hash value internally.
pub type VertexId = u64;

/// Logical timestamp of a stream item.
pub type Timestamp = u64;

/// Edge weight.  The paper allows negative weights to encode deletions of earlier items;
/// all structures in this workspace therefore accumulate weights in a signed integer.
pub type Weight = i64;

/// A directed edge key `(source, destination)` in the original graph.
///
/// `EdgeKey` is the unit of aggregation: all stream items sharing the same key have their
/// weights summed (Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeKey {
    /// Source vertex.
    pub source: VertexId,
    /// Destination vertex.
    pub destination: VertexId,
}

impl EdgeKey {
    /// Creates an edge key from `source` to `destination`.
    pub const fn new(source: VertexId, destination: VertexId) -> Self {
        Self { source, destination }
    }

    /// Returns the key with source and destination swapped.
    ///
    /// Useful when treating a directed structure as undirected (e.g. triangle counting).
    pub const fn reversed(self) -> Self {
        Self { source: self.destination, destination: self.source }
    }

    /// Returns `true` if the edge is a self loop.
    pub const fn is_self_loop(self) -> bool {
        self.source == self.destination
    }

    /// Canonical form for undirected interpretation: smaller endpoint first.
    pub fn undirected_canonical(self) -> Self {
        if self.source <= self.destination {
            self
        } else {
            self.reversed()
        }
    }
}

impl From<(VertexId, VertexId)> for EdgeKey {
    fn from((s, d): (VertexId, VertexId)) -> Self {
        Self::new(s, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_key_reversed_swaps_endpoints() {
        let e = EdgeKey::new(3, 9);
        assert_eq!(e.reversed(), EdgeKey::new(9, 3));
        assert_eq!(e.reversed().reversed(), e);
    }

    #[test]
    fn edge_key_self_loop_detection() {
        assert!(EdgeKey::new(5, 5).is_self_loop());
        assert!(!EdgeKey::new(5, 6).is_self_loop());
    }

    #[test]
    fn undirected_canonical_orders_endpoints() {
        assert_eq!(EdgeKey::new(9, 3).undirected_canonical(), EdgeKey::new(3, 9));
        assert_eq!(EdgeKey::new(3, 9).undirected_canonical(), EdgeKey::new(3, 9));
    }

    #[test]
    fn edge_key_from_tuple() {
        let e: EdgeKey = (1, 2).into();
        assert_eq!(e, EdgeKey::new(1, 2));
    }
}
