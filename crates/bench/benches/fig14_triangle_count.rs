//! Regenerates Fig. 14: relative error of global triangle counting on cit-HepPh, GSS vs
//! TRIEST at equal memory budgets.

use gss_bench::{bench_scale, emit};
use gss_experiments::run_fig14;

fn main() {
    let scale = bench_scale("fig14_triangle_count");
    emit(&[run_fig14(scale)], "fig14_triangle_count");
}
