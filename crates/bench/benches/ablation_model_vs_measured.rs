//! Validates the Section VI analytical models (collision rate, buffer overflow probability)
//! against measured edge-query ARE and buffer percentage across a width sweep.

use gss_bench::{bench_scale, emit};
use gss_experiments::run_model_vs_measured;

fn main() {
    let scale = bench_scale("ablation_model_vs_measured");
    emit(&[run_model_vs_measured(scale)], "ablation_model_vs_measured");
}
