//! Query-path scaling: successor/precursor/edge-query throughput across matrix load
//! factors on **both storage backends**, measuring the occupancy-indexed scans against
//! the naive full-grid baseline they replaced (and reporting page-touch counts on the
//! file backend, where a naive precursor query faults in nearly every page of the sketch
//! file because column scans stride across the row-major layout).
//!
//! The stream is a Zipf(α = 1.1) edge mix and the query vertices are drawn from the same
//! distribution, so hubs are queried more often — the shape of a read-heavy serving
//! workload.  Results are printed as a table and written as `BENCH_query.json` at the
//! workspace root via [`gss_experiments::BenchReport`], seeding the repo's first
//! query-performance trajectory next to `BENCH_ingest.json` and `BENCH_snapshot.json`.

use gss_core::{GssConfig, GssSketch, StorageBackend};
use gss_datasets::{Xoshiro256, ZipfSampler};
use gss_experiments::{fmt_float, BenchReport, ExperimentScale, Table};
use gss_graph::{StreamEdge, SummaryRead, SummaryWrite};
use std::path::PathBuf;
use std::time::Instant;

/// Swept matrix load factors (fraction of rooms occupied before querying) — the serving
/// regime, where a sketch is provisioned with headroom.  The index's win shrinks toward
/// 1× as the load factor approaches 1 (nothing is empty to skip); the equivalence
/// property tests pin that it never changes results at any load.
const LOAD_TARGETS: [f64; 3] = [0.01, 0.03, 0.08];
/// Items handed to one `insert_batch` call while filling.
const BATCH: usize = 512;

fn matrix_width(scale: ExperimentScale) -> usize {
    match scale {
        ExperimentScale::Smoke => 160,
        ExperimentScale::Laptop => 400,
        ExperimentScale::Paper => 1000,
    }
}

/// Queries per measurement on the indexed (production) path.
fn indexed_queries(scale: ExperimentScale) -> usize {
    match scale {
        ExperimentScale::Smoke => 400,
        ExperimentScale::Laptop => 2_000,
        ExperimentScale::Paper => 5_000,
    }
}

/// Queries per measurement on the naive full-grid baseline (fewer — the baseline is the
/// slow side by design; rates are reported per query, so the counts need not match).
fn naive_queries(scale: ExperimentScale) -> usize {
    match scale {
        ExperimentScale::Smoke => 60,
        ExperimentScale::Laptop => 200,
        ExperimentScale::Paper => 400,
    }
}

fn zipf_stream(items: usize, vertices: usize, seed: u64) -> Vec<StreamEdge> {
    let sampler = ZipfSampler::new(vertices, 1.1);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..items)
        .map(|t| {
            let source = sampler.sample(&mut rng) as u64 - 1;
            let destination = sampler.sample(&mut rng) as u64 - 1;
            StreamEdge::new(source, destination, t as u64, 1)
        })
        .collect()
}

fn zipf_vertices(count: usize, vertices: usize, seed: u64) -> Vec<u64> {
    let sampler = ZipfSampler::new(vertices, 1.1);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..count).map(|_| sampler.sample(&mut rng) as u64 - 1).collect()
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gss-query-scaling-{}-{name}.gss", std::process::id()))
}

/// Inserts stream prefixes until the matrix holds at least `target_rooms` occupied rooms;
/// returns the number of items consumed.
fn fill_to_load(sketch: &mut GssSketch, stream: &[StreamEdge], target_rooms: usize) -> usize {
    let mut consumed = 0;
    for batch in stream.chunks(BATCH) {
        if sketch.stats().occupied_slots >= target_rooms {
            break;
        }
        sketch.insert_batch(batch);
        consumed += batch.len();
    }
    if sketch.stats().occupied_slots < target_rooms {
        eprintln!("warning: stream exhausted below the target load");
    }
    consumed
}

/// The production successor query restricted to the hashed space (isolates the scan path
/// from node-id translation, which is identical in both variants).
fn successor_len(sketch: &GssSketch, vertex: u64) -> usize {
    sketch.successor_hashes(vertex).len()
}

fn precursor_len(sketch: &GssSketch, vertex: u64) -> usize {
    sketch.precursor_hashes(vertex).len()
}

/// Naive reference successor query: the same loop as [`GssSketch::successor_hashes`], but
/// over full-grid row scans that ignore the occupancy index (matrix part only — the
/// left-over buffer is empty at the swept loads, which the driver asserts).
fn naive_successor_hashes(sketch: &GssSketch, vertex: u64) -> Vec<u64> {
    let hasher = sketch.hasher();
    let node = hasher.hashed_node(vertex);
    let mut result = Vec::new();
    for (index, &row) in hasher.address_sequence(node).iter().enumerate() {
        sketch.room_storage().scan_row_naive(row, &mut |column, room| {
            if room.source_fingerprint == node.fingerprint && room.source_index as usize == index {
                result.push(hasher.recover_hash(
                    column,
                    room.destination_fingerprint,
                    room.destination_index as usize,
                ));
            }
        });
    }
    result.sort_unstable();
    result.dedup();
    result
}

fn naive_precursor_hashes(sketch: &GssSketch, vertex: u64) -> Vec<u64> {
    let hasher = sketch.hasher();
    let node = hasher.hashed_node(vertex);
    let mut result = Vec::new();
    for (index, &column) in hasher.address_sequence(node).iter().enumerate() {
        sketch.room_storage().scan_column_naive(column, &mut |row, room| {
            if room.destination_fingerprint == node.fingerprint
                && room.destination_index as usize == index
            {
                result.push(hasher.recover_hash(
                    row,
                    room.source_fingerprint,
                    room.source_index as usize,
                ));
            }
        });
    }
    result.sort_unstable();
    result.dedup();
    result
}

/// Times `query` over `queries`, returning (seconds, page-touch delta per query when
/// file-backed).  The result length is accumulated so the loop cannot be optimised away.
fn measure(
    sketch: &GssSketch,
    queries: &[u64],
    mut query: impl FnMut(&GssSketch, u64) -> usize,
) -> (f64, f64, f64) {
    let before = sketch.room_storage().as_file().map(|f| f.page_stats());
    let start = Instant::now();
    let mut touched = 0usize;
    for &vertex in queries {
        touched += query(sketch, vertex);
    }
    let seconds = start.elapsed().as_secs_f64();
    std::hint::black_box(touched);
    let (lookups, faults) = match (before, sketch.room_storage().as_file().map(|f| f.page_stats()))
    {
        (Some(before), Some(after)) => (
            (after.lookups - before.lookups) as f64 / queries.len() as f64,
            (after.faults - before.faults) as f64 / queries.len() as f64,
        ),
        _ => (0.0, 0.0),
    };
    (seconds, lookups, faults)
}

struct LoadPoint {
    load_factor: f64,
    items: usize,
    edge_qps: f64,
    successor_qps: f64,
    precursor_qps: f64,
    successor_naive_qps: f64,
    precursor_naive_qps: f64,
    indexed_pages_per_query: f64,
    naive_pages_per_query: f64,
    indexed_faults_per_query: f64,
    naive_faults_per_query: f64,
}

fn main() {
    let scale = gss_bench::bench_scale("query_scaling");
    let config = GssConfig::paper_default(matrix_width(scale));
    let room_count = config.room_count();
    let max_target = (LOAD_TARGETS[LOAD_TARGETS.len() - 1] * room_count as f64) as usize;
    // 8× headroom over the densest target covers Zipf duplicate folding.
    let stream = zipf_stream(max_target * 8, 60_000, 0x0051_CA1E);
    let query_vertices = zipf_vertices(indexed_queries(scale), 60_000, 0x00AD_BEEF);
    let naive_vertices: Vec<u64> =
        query_vertices.iter().copied().take(naive_queries(scale)).collect();
    // A page cache an eighth of the matrix: large enough to be a real cache, small enough
    // that full-grid column scans thrash it (the regime the index exists for).
    let matrix_pages = (room_count * gss_core::ROOM_RECORD_BYTES).div_ceil(4096).max(1);
    let cache_pages = (matrix_pages / 8).max(8);

    let mut table = Table::new(
        format!(
            "Query scaling — width {}, {} indexed / {} naive queries per point ({} scale)",
            config.width,
            query_vertices.len(),
            naive_vertices.len(),
            scale.name()
        ),
        &["backend", "load", "edge_qps", "succ_qps", "prec_qps", "prec_naive_qps", "prec_speedup"],
    );
    let mut report = BenchReport::new("query")
        .context("scale", scale.name())
        .context("width", config.width)
        .context("rooms_per_bucket", config.rooms)
        .context("sequence_length", config.sequence_length)
        .context("distinct_vertices", 60_000)
        .context("zipf_exponent", "1.1")
        .context("indexed_queries", query_vertices.len())
        .context("naive_queries", naive_vertices.len())
        .context("file_cache_pages", cache_pages)
        .context("matrix_pages", matrix_pages);

    for backend_name in ["memory", "file"] {
        let mut naive_seconds_total = 0.0;
        let mut indexed_seconds_total = 0.0;
        let mut points: Vec<LoadPoint> = Vec::new();
        for &load in &LOAD_TARGETS {
            let target_rooms = (load * room_count as f64) as usize;
            let file_path = (backend_name == "file")
                .then(|| temp_path(&format!("l{}", (load * 1000.0) as usize)));
            let storage = match &file_path {
                None => StorageBackend::Memory,
                Some(path) => StorageBackend::File { path: path.clone(), cache_pages },
            };
            let mut sketch = GssSketch::with_storage(config, storage).expect("valid config");
            let items = fill_to_load(&mut sketch, &stream, target_rooms);
            assert_eq!(
                sketch.buffered_edges(),
                0,
                "swept loads must stay below buffer spill so naive and indexed queries \
                 compare the same rooms"
            );
            // Sanity: the indexed query answers exactly what the naive reference answers.
            for &vertex in naive_vertices.iter().take(16) {
                assert_eq!(
                    sketch.successor_hashes(vertex),
                    naive_successor_hashes(&sketch, vertex)
                );
                assert_eq!(
                    sketch.precursor_hashes(vertex),
                    naive_precursor_hashes(&sketch, vertex)
                );
            }

            let pairs: Vec<(u64, u64)> = stream
                .iter()
                .take(query_vertices.len())
                .map(|edge| (edge.source, edge.destination))
                .collect();
            let edge_start = Instant::now();
            let mut present = 0usize;
            for &(s, d) in &pairs {
                present += usize::from(sketch.edge_weight(s, d).is_some());
            }
            let edge_seconds = edge_start.elapsed().as_secs_f64();
            std::hint::black_box(present);

            let (succ_seconds, _, _) = measure(&sketch, &query_vertices, successor_len);
            let (prec_seconds, prec_pages, prec_faults) =
                measure(&sketch, &query_vertices, precursor_len);
            let (succ_naive_seconds, _, _) =
                measure(&sketch, &naive_vertices, |s, v| naive_successor_hashes(s, v).len());
            let (prec_naive_seconds, prec_naive_pages, prec_naive_faults) =
                measure(&sketch, &naive_vertices, |s, v| naive_precursor_hashes(s, v).len());

            naive_seconds_total += prec_naive_seconds / naive_vertices.len() as f64;
            indexed_seconds_total += prec_seconds / query_vertices.len() as f64;
            points.push(LoadPoint {
                load_factor: sketch.detailed_stats().matrix_load_factor,
                items,
                edge_qps: pairs.len() as f64 / edge_seconds,
                successor_qps: query_vertices.len() as f64 / succ_seconds,
                precursor_qps: query_vertices.len() as f64 / prec_seconds,
                successor_naive_qps: naive_vertices.len() as f64 / succ_naive_seconds,
                precursor_naive_qps: naive_vertices.len() as f64 / prec_naive_seconds,
                indexed_pages_per_query: prec_pages,
                naive_pages_per_query: prec_naive_pages,
                indexed_faults_per_query: prec_faults,
                naive_faults_per_query: prec_naive_faults,
            });
            if let Some(path) = file_path {
                drop(sketch);
                std::fs::remove_file(path).ok();
            }
        }

        for point in &points {
            let speedup = point.precursor_qps / point.precursor_naive_qps;
            report.push(
                backend_name,
                &[
                    ("load_factor", point.load_factor),
                    ("items", point.items as f64),
                    ("edge_qps", point.edge_qps),
                    ("successor_qps", point.successor_qps),
                    ("precursor_qps", point.precursor_qps),
                    ("successor_naive_qps", point.successor_naive_qps),
                    ("precursor_naive_qps", point.precursor_naive_qps),
                    ("successor_speedup", point.successor_qps / point.successor_naive_qps),
                    ("precursor_speedup", speedup),
                    ("indexed_pages_per_query", point.indexed_pages_per_query),
                    ("naive_pages_per_query", point.naive_pages_per_query),
                    ("indexed_faults_per_query", point.indexed_faults_per_query),
                    ("naive_faults_per_query", point.naive_faults_per_query),
                ],
            );
            table.push_row(vec![
                backend_name.to_string(),
                format!("{:.3}", point.load_factor),
                fmt_float(point.edge_qps),
                fmt_float(point.successor_qps),
                fmt_float(point.precursor_qps),
                fmt_float(point.precursor_naive_qps),
                format!("{:.2}x", speedup),
            ]);
        }
        // Aggregate across the sweep: total per-query time, naive vs indexed.
        report.push(
            format!("{backend_name}_aggregate"),
            &[("precursor_speedup", naive_seconds_total / indexed_seconds_total)],
        );
    }

    table.print();
    match report.write() {
        Ok(path) => println!("(json written to {})", path.display()),
        Err(error) => eprintln!("warning: could not write BENCH_query.json: {error}"),
    }
}
