//! Regenerates Fig. 13: buffer percentage vs matrix width for the four GSS variants
//! ({1,2} rooms x {square hashing, no square hashing}) on web-NotreDame, lkml-reply and the
//! CAIDA-like stream.

use gss_bench::{bench_scale, emit};
use gss_experiments::run_fig13;

fn main() {
    let scale = bench_scale("fig13_buffer_percentage");
    emit(&run_fig13(scale), "fig13_buffer_percentage");
}
