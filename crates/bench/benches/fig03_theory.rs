//! Regenerates Fig. 3: theoretical correct rate of the three query primitives as a function
//! of the hash range `M` and the queried degree (Section VI-B analysis).

use gss_bench::{bench_scale, emit};
use gss_experiments::run_fig03;

fn main() {
    let _scale = bench_scale("fig03_theory");
    emit(&run_fig03(), "fig03_theory");
}
