//! Criterion micro-benchmarks of the individual GSS operations (insert, edge query, 1-hop
//! successor query, 1-hop precursor query) against TCM and the exact adjacency list.
//!
//! These are not a paper figure; they support the `O(1)` update / query-cost claims of
//! Section VI-A with wall-clock measurements on this machine.

use criterion::{Criterion, Throughput};
use gss_datasets::SyntheticDataset;
use gss_experiments::{build_gss, build_tcm_with_ratio, DatasetRun, ExperimentScale};
use gss_graph::{AdjacencyListGraph, SummaryRead, SummaryWrite, VertexId};
use std::hint::black_box;

fn main() {
    println!("## micro_operations — per-operation latencies (smoke-scale cit-HepPh stream)\n");
    let dataset = SyntheticDataset::CitHepPh;
    let run = DatasetRun::build(dataset, ExperimentScale::Smoke);
    let widths = run.widths(ExperimentScale::Smoke);
    let width = widths[widths.len() / 2];

    let mut gss = build_gss(dataset, width, 16);
    let mut tcm = build_tcm_with_ratio(width, 2, 8.0);
    let mut adjacency = AdjacencyListGraph::new();
    run.insert_into(&mut gss);
    run.insert_into(&mut tcm);
    run.insert_into(&mut adjacency);

    let queries: Vec<(VertexId, VertexId)> = run
        .edge_query_sample(256, 0xBEEF)
        .into_iter()
        .map(|(key, _)| (key.source, key.destination))
        .collect();
    let nodes: Vec<VertexId> = run.node_query_sample(256, 0xCAFE);

    let mut criterion = Criterion::default().configure_from_args().sample_size(20);

    {
        let mut group = criterion.benchmark_group("insert_one_item");
        group.throughput(Throughput::Elements(1));
        let mut next = 0u64;
        group.bench_function("gss", |b| {
            b.iter(|| {
                next = next.wrapping_add(1);
                gss.insert(black_box(next % 10_000), black_box((next * 7) % 10_000), 1);
            })
        });
        group.bench_function("tcm", |b| {
            b.iter(|| {
                next = next.wrapping_add(1);
                tcm.insert(black_box(next % 10_000), black_box((next * 7) % 10_000), 1);
            })
        });
        group.bench_function("adjacency_list", |b| {
            b.iter(|| {
                next = next.wrapping_add(1);
                adjacency.insert(black_box(next % 10_000), black_box((next * 7) % 10_000), 1);
            })
        });
        group.finish();
    }

    {
        let mut group = criterion.benchmark_group("edge_query");
        group.throughput(Throughput::Elements(queries.len() as u64));
        group.bench_function("gss", |b| {
            b.iter(|| queries.iter().filter(|&&(s, d)| gss.edge_weight(s, d).is_some()).count())
        });
        group.bench_function("tcm", |b| {
            b.iter(|| queries.iter().filter(|&&(s, d)| tcm.edge_weight(s, d).is_some()).count())
        });
        group.bench_function("adjacency_list", |b| {
            b.iter(|| {
                queries.iter().filter(|&&(s, d)| adjacency.edge_weight(s, d).is_some()).count()
            })
        });
        group.finish();
    }

    {
        let mut group = criterion.benchmark_group("one_hop_queries");
        group.throughput(Throughput::Elements(nodes.len() as u64));
        group.bench_function("gss_successors", |b| {
            b.iter(|| nodes.iter().map(|&v| gss.successors(v).len()).sum::<usize>())
        });
        group.bench_function("gss_precursors", |b| {
            b.iter(|| nodes.iter().map(|&v| gss.precursors(v).len()).sum::<usize>())
        });
        group.bench_function("adjacency_successors", |b| {
            b.iter(|| nodes.iter().map(|&v| adjacency.successors(v).len()).sum::<usize>())
        });
        group.finish();
    }

    criterion.final_summary();
}
