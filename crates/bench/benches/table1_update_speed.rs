//! Regenerates Table I: update speed (million insertions per second) of GSS, GSS without
//! candidate sampling, TCM and the accelerated adjacency list on the three static datasets —
//! plus Criterion micro-benchmarks of the per-item insert path for each structure.

use criterion::{BatchSize, Criterion};
use gss_bench::{bench_scale, emit};
use gss_core::GssSketch;
use gss_datasets::SyntheticDataset;
use gss_experiments::{
    build_gss, build_tcm_with_ratio, gss_config_for, run_table1, DatasetRun, ExperimentScale,
};
use gss_graph::{AdjacencyListGraph, SummaryRead, SummaryWrite};
use std::hint::black_box;

/// Criterion benchmark: insert a fixed smoke-scale stream into each structure.
fn criterion_inserts(scale: ExperimentScale) {
    let dataset = SyntheticDataset::CitHepPh;
    let run = DatasetRun::build(dataset, ExperimentScale::Smoke);
    let widths = run.widths(scale);
    let width = widths[widths.len() / 2];
    let items = run.items.clone();

    let mut criterion = Criterion::default().configure_from_args().sample_size(10);
    let mut group = criterion.benchmark_group("table1_insert_stream");
    group.throughput(criterion::Throughput::Elements(items.len() as u64));

    group.bench_function("gss", |b| {
        b.iter_batched(
            || build_gss(dataset, width, 16),
            |mut sketch| {
                for item in &items {
                    sketch.insert(item.source, item.destination, item.weight);
                }
                black_box(sketch.stats().items_inserted)
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("gss_no_sampling", |b| {
        b.iter_batched(
            || {
                GssSketch::new(gss_config_for(dataset, width, 16).with_sampling(false))
                    .expect("valid config")
            },
            |mut sketch| {
                for item in &items {
                    sketch.insert(item.source, item.destination, item.weight);
                }
                black_box(sketch.stats().items_inserted)
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("tcm", |b| {
        b.iter_batched(
            || build_tcm_with_ratio(width, 2, scale.tcm_edge_ratio()),
            |mut sketch| {
                for item in &items {
                    sketch.insert(item.source, item.destination, item.weight);
                }
                black_box(sketch.stats().items_inserted)
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("adjacency_list", |b| {
        b.iter_batched(
            AdjacencyListGraph::new,
            |mut graph| {
                for item in &items {
                    graph.insert(item.source, item.destination, item.weight);
                }
                black_box(graph.edge_count())
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
    criterion.final_summary();
}

fn main() {
    let scale = bench_scale("table1_update_speed");
    emit(&[run_table1(scale)], "table1_update_speed");
    criterion_inserts(scale);
}
