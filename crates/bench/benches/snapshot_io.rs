//! Snapshot and storage-backend I/O: streaming snapshot write/read bandwidth, ingest
//! throughput on the in-memory vs the paged file backend, and the cost of reopening a
//! sketch file in place.
//!
//! Results are printed as a table and written as `BENCH_snapshot.json` at the workspace
//! root via [`gss_experiments::BenchReport`], alongside `BENCH_ingest.json` in the bench
//! trajectory.  The file backend always runs here (unlike the figure benches, which only
//! touch it under `GSS_STORAGE=file`), because comparing the two backends is the point.

use gss_core::{GssConfig, GssSketch, StorageBackend};
use gss_datasets::{Xoshiro256, ZipfSampler};
use gss_experiments::{fmt_float, BenchReport, ExperimentScale, Table};
use gss_graph::{StreamEdge, SummaryWrite};
use std::path::PathBuf;
use std::time::Instant;

/// Items handed to one `insert_batch` call.
const BATCH: usize = 512;

fn zipf_stream(items: usize, vertices: usize, seed: u64) -> Vec<StreamEdge> {
    let sampler = ZipfSampler::new(vertices, 1.1);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..items)
        .map(|t| {
            let source = sampler.sample(&mut rng) as u64 - 1;
            let destination = sampler.sample(&mut rng) as u64 - 1;
            StreamEdge::new(source, destination, t as u64, 1)
        })
        .collect()
}

fn stream_items(scale: ExperimentScale) -> usize {
    match scale {
        ExperimentScale::Smoke => 100_000,
        ExperimentScale::Laptop => 500_000,
        ExperimentScale::Paper => 2_000_000,
    }
}

fn matrix_width(scale: ExperimentScale) -> usize {
    match scale {
        ExperimentScale::Smoke => 160,
        ExperimentScale::Laptop => 400,
        ExperimentScale::Paper => 1000,
    }
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gss-snapshot-io-{}-{name}", std::process::id()))
}

fn ingest(sketch: &mut GssSketch, items: &[StreamEdge]) -> f64 {
    let start = Instant::now();
    for batch in items.chunks(BATCH) {
        sketch.insert_batch(batch);
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    let scale = gss_bench::bench_scale("snapshot_io");
    let items = zipf_stream(stream_items(scale), 60_000, 0x5A17_B07E);
    let config = GssConfig::paper_default(matrix_width(scale));
    let cache_pages = scale.file_cache_pages();
    let mitems = |seconds: f64| items.len() as f64 / seconds / 1e6;

    // Ingest: in-memory baseline vs the paged file backend over the same stream.
    let mut memory_sketch = GssSketch::new(config).expect("valid config");
    let memory_seconds = ingest(&mut memory_sketch, &items);

    let file_path = temp_path("sketch.gss");
    let mut file_sketch = GssSketch::with_storage(
        config,
        StorageBackend::File { path: file_path.clone(), cache_pages },
    )
    .expect("sketch file creatable in the temp dir");
    let file_seconds = ingest(&mut file_sketch, &items);

    // Streaming snapshot write and read through buffered files.
    let snapshot_path = temp_path("sketch.snap");
    let write_start = Instant::now();
    memory_sketch.save_to_path(&snapshot_path).expect("snapshot writable");
    let write_seconds = write_start.elapsed().as_secs_f64();
    let snapshot_bytes = std::fs::metadata(&snapshot_path).expect("snapshot exists").len();
    let mb = snapshot_bytes as f64 / (1024.0 * 1024.0);

    let read_start = Instant::now();
    let restored = GssSketch::load_from_path(&snapshot_path).expect("snapshot readable");
    let read_seconds = read_start.elapsed().as_secs_f64();
    assert_eq!(restored.stored_edges(), memory_sketch.stored_edges());

    // Open-in-place: sync the file sketch, drop it, reopen without a decode pass.
    file_sketch.sync().expect("sketch file syncable");
    let file_stored = file_sketch.stored_edges();
    drop(file_sketch);
    let reopen_start = Instant::now();
    let reopened = GssSketch::open_file(&file_path, cache_pages).expect("sketch file reopens");
    let reopen_seconds = reopen_start.elapsed().as_secs_f64();
    assert_eq!(reopened.stored_edges(), file_stored);
    drop(reopened);
    std::fs::remove_file(&file_path).ok();
    std::fs::remove_file(&snapshot_path).ok();

    let mut table = Table::new(
        format!(
            "Snapshot & storage I/O — {} Zipf items, width {} ({} scale)",
            items.len(),
            config.width,
            scale.name()
        ),
        &["measure", "seconds", "rate"],
    );
    table.push_row(vec![
        "ingest memory".into(),
        fmt_float(memory_seconds),
        format!("{} Mitems/s", fmt_float(mitems(memory_seconds))),
    ]);
    table.push_row(vec![
        "ingest file".into(),
        fmt_float(file_seconds),
        format!("{} Mitems/s", fmt_float(mitems(file_seconds))),
    ]);
    table.push_row(vec![
        "snapshot write".into(),
        fmt_float(write_seconds),
        format!("{} MB/s", fmt_float(mb / write_seconds)),
    ]);
    table.push_row(vec![
        "snapshot read".into(),
        fmt_float(read_seconds),
        format!("{} MB/s", fmt_float(mb / read_seconds)),
    ]);
    table.push_row(vec!["open in place".into(), fmt_float(reopen_seconds), "-".into()]);
    table.print();

    let mut report = BenchReport::new("snapshot")
        .context("scale", scale.name())
        .context("items", items.len())
        .context("width", config.width)
        .context("cache_pages", cache_pages)
        .context("batch", BATCH)
        .context("snapshot_bytes", snapshot_bytes);
    report.push(
        "ingest_memory",
        &[("seconds", memory_seconds), ("mitems_per_sec", mitems(memory_seconds))],
    );
    report.push(
        "ingest_file",
        &[("seconds", file_seconds), ("mitems_per_sec", mitems(file_seconds))],
    );
    report
        .push("snapshot_write", &[("seconds", write_seconds), ("mb_per_sec", mb / write_seconds)]);
    report.push("snapshot_read", &[("seconds", read_seconds), ("mb_per_sec", mb / read_seconds)]);
    report.push("open_in_place", &[("seconds", reopen_seconds)]);
    match report.write() {
        Ok(path) => println!("(json written to {})", path.display()),
        Err(error) => eprintln!("warning: could not write BENCH_snapshot.json: {error}"),
    }
}
