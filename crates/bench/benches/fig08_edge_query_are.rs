//! Regenerates Fig. 8: average relative error of edge queries vs matrix width, for GSS with
//! 12- and 16-bit fingerprints and TCM at 8x memory, on all five datasets.

use gss_bench::{bench_scale, emit};
use gss_datasets::SyntheticDataset;
use gss_experiments::{run_accuracy_figure, AccuracyFigure, Table};

fn main() {
    let scale = bench_scale("fig08_edge_query_are");
    let tables: Vec<Table> = SyntheticDataset::ALL
        .iter()
        .map(|&dataset| run_accuracy_figure(AccuracyFigure::EdgeQueryAre, dataset, scale))
        .collect();
    emit(&tables, "fig08_edge_query_are");
}
