//! Regenerates Fig. 12: true negative recall of reachability queries over 100 unreachable
//! vertex pairs, for GSS and TCM, on all five datasets.

use gss_bench::{bench_scale, emit};
use gss_datasets::SyntheticDataset;
use gss_experiments::{run_accuracy_figure, AccuracyFigure, Table};

fn main() {
    let scale = bench_scale("fig12_reachability_tnr");
    let tables: Vec<Table> = SyntheticDataset::ALL
        .iter()
        .map(|&dataset| run_accuracy_figure(AccuracyFigure::ReachabilityTnr, dataset, scale))
        .collect();
    emit(&tables, "fig12_reachability_tnr");
}
