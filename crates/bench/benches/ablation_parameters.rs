//! Ablation over the GSS design parameters (sequence length, candidate count, rooms,
//! fingerprint width): buffer percentage, edge-query ARE and update speed for each variant.

use gss_bench::{bench_scale, emit};
use gss_experiments::run_parameter_ablation;

fn main() {
    let scale = bench_scale("ablation_parameters");
    emit(&[run_parameter_ablation(scale)], "ablation_parameters");
}
