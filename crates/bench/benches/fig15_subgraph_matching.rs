//! Regenerates Fig. 15: correct rate of subgraph matching in stream windows, GSS (VF2 over
//! the primitives at one tenth of the memory) vs an exact windowed matcher.

use gss_bench::{bench_scale, emit};
use gss_experiments::run_fig15;

fn main() {
    let scale = bench_scale("fig15_subgraph_matching");
    emit(&[run_fig15(scale)], "fig15_subgraph_matching");
}
