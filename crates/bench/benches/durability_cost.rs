//! Durability cost: what crash consistency charges the ingest path, and what recovery
//! costs at reopen time.
//!
//! Two sweeps over one Zipf stream:
//!
//! * **Ingest throughput** — in-memory baseline vs the file backend under
//!   `Durability::Strict` (write-ahead log drained per commit through the group-commit
//!   coordinator, one cadence `fdatasync` per window) vs `Durability::Buffered`
//!   (batched log drains, background flusher thread).  The cache is sized *below* the
//!   room region, so page eviction and the flusher show up in the reported numbers.
//! * **Recovery time vs WAL length** — Strict file sketches abandoned (crash-simulated)
//!   at growing stream prefixes, then reopened through write-ahead-log replay; reports
//!   the log length and the wall-clock cost of `GssSketch::open_file`, plus the clean
//!   open time as the no-replay baseline.
//!
//! Results are printed as a table and written as `BENCH_durability.json` at the
//! workspace root via [`gss_experiments::BenchReport`].

use gss_core::{Durability, GssConfig, GssSketch, StorageBackend};
use gss_datasets::{Xoshiro256, ZipfSampler};
use gss_experiments::{fmt_float, BenchReport, ExperimentScale, Table};
use gss_graph::{StreamEdge, SummaryWrite};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Items handed to one `insert_batch` call.
const BATCH: usize = 512;

fn zipf_stream(items: usize, vertices: usize, seed: u64) -> Vec<StreamEdge> {
    let sampler = ZipfSampler::new(vertices, 1.1);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..items)
        .map(|t| {
            let source = sampler.sample(&mut rng) as u64 - 1;
            let destination = sampler.sample(&mut rng) as u64 - 1;
            StreamEdge::new(source, destination, t as u64, 1)
        })
        .collect()
}

fn stream_items(scale: ExperimentScale) -> usize {
    match scale {
        ExperimentScale::Smoke => 100_000,
        ExperimentScale::Laptop => 500_000,
        ExperimentScale::Paper => 2_000_000,
    }
}

fn matrix_width(scale: ExperimentScale) -> usize {
    match scale {
        ExperimentScale::Smoke => 160,
        ExperimentScale::Laptop => 400,
        ExperimentScale::Paper => 1000,
    }
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gss-durability-{}-{name}", std::process::id()))
}

fn ingest(sketch: &mut GssSketch, items: &[StreamEdge]) -> f64 {
    let start = Instant::now();
    for batch in items.chunks(BATCH) {
        sketch.insert_batch(batch);
    }
    start.elapsed().as_secs_f64()
}

fn file_sketch(
    config: GssConfig,
    path: &Path,
    cache_pages: usize,
    durability: Durability,
) -> GssSketch {
    GssSketch::with_storage_durability(
        config,
        StorageBackend::File { path: path.to_path_buf(), cache_pages },
        durability,
    )
    .expect("sketch file creatable in the temp dir")
}

fn main() {
    let scale = gss_bench::bench_scale("durability_cost");
    let items = zipf_stream(stream_items(scale), 60_000, 0xD04A_B1E5);
    let config = GssConfig::paper_default(matrix_width(scale));
    // Cap the cache below the room region so eviction and the background flusher are
    // actually exercised: with the whole matrix resident (smoke scale used to fit in
    // `file_cache_pages()`), every run reported `pages_flushed: 0` and the "write-back"
    // cost it claimed to measure never happened.
    let room_pages = (config.width * config.width * config.rooms * gss_core::ROOM_RECORD_BYTES)
        .div_ceil(gss_core::pager::PAGE_BYTES);
    let cache_pages = scale.file_cache_pages().min(room_pages / 2).max(8);
    let mitems = |count: usize, seconds: f64| count as f64 / seconds / 1e6;

    let mut table = Table::new(
        format!(
            "Durability cost — {} Zipf items, width {} ({} scale)",
            items.len(),
            config.width,
            scale.name()
        ),
        &["measure", "seconds", "rate / detail"],
    );
    let mut report = BenchReport::new("durability")
        .context("scale", scale.name())
        .context("items", items.len())
        .context("width", config.width)
        .context("cache_pages", cache_pages)
        .context("batch", BATCH);

    // Ingest throughput: memory vs Strict vs Buffered over the same stream.
    let mut memory_sketch = GssSketch::new(config).expect("valid config");
    let memory_seconds = ingest(&mut memory_sketch, &items);
    drop(memory_sketch);
    for (name, durability) in [("strict", Durability::Strict), ("buffered", Durability::Buffered)] {
        let path = temp_path(&format!("ingest-{name}.gss"));
        let mut sketch = file_sketch(config, &path, cache_pages, durability);
        let seconds = ingest(&mut sketch, &items);
        let stats = sketch.detailed_stats();
        drop(sketch);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(gss_core::wal::wal_path(&path)).ok();
        table.push_row(vec![
            format!("ingest file ({name})"),
            fmt_float(seconds),
            format!(
                "{} Mitems/s, {} wal flushes, {} pages flushed, \
                 {} group commits ({} waited), {} fsyncs, \
                 {} io retries / {} injected faults / poisoned {}",
                fmt_float(mitems(items.len(), seconds)),
                stats.wal_flushes,
                stats.pages_flushed,
                stats.wal_group_commits,
                stats.wal_group_waits,
                stats.fsyncs,
                stats.io_retries,
                stats.injected_faults,
                stats.store_poisoned
            ),
        ]);
        // The fault-path counters belong in the trajectory precisely because they must
        // stay zero here: a bench run with injected faults or a poisoned store is not
        // measuring ingest cost, and any nonzero retry count on healthy I/O is news.
        report.push(
            format!("ingest_file_{name}"),
            &[
                ("seconds", seconds),
                ("mitems_per_sec", mitems(items.len(), seconds)),
                ("wal_flushes", stats.wal_flushes as f64),
                ("pages_flushed", stats.pages_flushed as f64),
                ("wal_group_commits", stats.wal_group_commits as f64),
                ("wal_group_waits", stats.wal_group_waits as f64),
                ("fsyncs", stats.fsyncs as f64),
                ("io_retries", stats.io_retries as f64),
                ("injected_faults", stats.injected_faults as f64),
                ("store_poisoned", stats.store_poisoned as f64),
            ],
        );
    }
    table.push_row(vec![
        "ingest memory".into(),
        fmt_float(memory_seconds),
        format!("{} Mitems/s", fmt_float(mitems(items.len(), memory_seconds))),
    ]);
    report.push(
        "ingest_memory",
        &[("seconds", memory_seconds), ("mitems_per_sec", mitems(items.len(), memory_seconds))],
    );

    // Recovery time vs WAL length: abandon (crash-simulate) Strict sketches at growing
    // prefixes and time the write-ahead-log replay on reopen.
    for percent in [25usize, 50, 100] {
        let count = (items.len() * percent / 100).max(BATCH);
        let path = temp_path(&format!("recover-{percent}.gss"));
        let mut sketch = file_sketch(config, &path, cache_pages, Durability::Strict);
        ingest(&mut sketch, &items[..count]);
        let wal_bytes = sketch.detailed_stats().wal_bytes;
        sketch.abandon();
        let start = Instant::now();
        let recovered = GssSketch::open_file(&path, cache_pages).expect("recovery succeeds");
        let seconds = start.elapsed().as_secs_f64();
        assert_eq!(recovered.items_inserted(), count as u64, "no item loss in recovery");
        drop(recovered);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(gss_core::wal::wal_path(&path)).ok();
        table.push_row(vec![
            format!("recover {percent}% ({count} items)"),
            fmt_float(seconds),
            format!("{:.1} MB wal replayed", wal_bytes as f64 / (1024.0 * 1024.0)),
        ]);
        report.push(
            format!("recover_{percent}pct"),
            &[("items", count as f64), ("wal_bytes", wal_bytes as f64), ("seconds", seconds)],
        );
    }

    // Clean-open baseline: the same file checkpointed properly, no replay needed.
    {
        let path = temp_path("clean-open.gss");
        let mut sketch = file_sketch(config, &path, cache_pages, Durability::Strict);
        ingest(&mut sketch, &items);
        sketch.sync().expect("checkpoint");
        drop(sketch);
        let start = Instant::now();
        let reopened = GssSketch::open_file(&path, cache_pages).expect("clean reopen");
        let seconds = start.elapsed().as_secs_f64();
        drop(reopened);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(gss_core::wal::wal_path(&path)).ok();
        table.push_row(vec!["open clean (no replay)".into(), fmt_float(seconds), "-".into()]);
        report.push("open_clean", &[("seconds", seconds)]);
    }

    table.print();
    match report.write() {
        Ok(path) => println!("(json written to {})", path.display()),
        Err(error) => eprintln!("warning: could not write BENCH_durability.json: {error}"),
    }
}
