//! Multi-thread ingest scaling: [`ShardedGss`] (per-shard locks, source-vertex routing)
//! against the single-lock wrapper it replaces, driven by 1/2/4/8 writer threads over a
//! Zipf-distributed edge stream.
//!
//! Every writer feeds its slice of the stream through the batched ingest path
//! (`insert_batch`), so the measurement compares lock granularity and per-shard load, not
//! batching itself.  The single-lock baseline is `ShardedGss` with one shard — the exact
//! code path of the deprecated `ConcurrentGss` wrapper (one sketch, one `RwLock`).
//!
//! Results are printed as a table and written as `BENCH_ingest.json` at the workspace root
//! via [`gss_experiments::BenchReport`], seeding the bench trajectory.
//!
//! Set `GSS_STORAGE=file` to run the same sweep with every shard's room matrix on the
//! paged file backend (one sketch file per shard under the temp dir) — the configuration
//! that matters for larger-than-RAM matrices — and `GSS_DURABILITY=strict|buffered` to
//! pick its write-ahead-log / write-back policy.

use gss_core::{GssConfig, ShardedGss};
use gss_datasets::{Xoshiro256, ZipfSampler};
use gss_experiments::{
    fmt_float, remove_run_files, storage_backend_from_env, BenchReport, ExperimentScale, Table,
};
use gss_graph::StreamEdge;
use std::time::Instant;

/// Writer-thread counts swept by the bench.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Items handed to one `insert_batch` call per lock acquisition.
const BATCH: usize = 1024;
/// Timed repetitions per configuration (the minimum is reported).
const REPEATS: usize = 3;

/// A Zipf(α = 1.1) edge stream over `vertices` endpoints — the skewed shape of the paper's
/// CAIDA/lkml workloads: hub-heavy, with duplicate keys for the batch folding to chew on
/// but enough distinct edges to load a paper-sized matrix past capacity.
fn zipf_stream(items: usize, vertices: usize, seed: u64) -> Vec<StreamEdge> {
    let sampler = ZipfSampler::new(vertices, 1.1);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..items)
        .map(|t| {
            let source = sampler.sample(&mut rng) as u64 - 1;
            let destination = sampler.sample(&mut rng) as u64 - 1;
            StreamEdge::new(source, destination, t as u64, 1)
        })
        .collect()
}

fn stream_items(scale: ExperimentScale) -> usize {
    match scale {
        ExperimentScale::Smoke => 200_000,
        ExperimentScale::Laptop => 1_000_000,
        ExperimentScale::Paper => 5_000_000,
    }
}

/// Splits `items` across `threads` writers (cloned handles) and returns the best
/// wall-clock seconds over [`REPEATS`] runs; the sketch is rebuilt for every run on the
/// `GSS_STORAGE`-selected backend (fresh sketch files per run under the file backend).
fn measure(
    config: GssConfig,
    shards: usize,
    threads: usize,
    items: &[StreamEdge],
    scale: ExperimentScale,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPEATS {
        // Each shard keeps the scale's full page-cache budget.  A shard's matrix is the
        // full m×m grid (sharding splits the *stream* by source, not the geometry), so
        // dividing the budget by the shard count used to hand multi-writer runs a
        // cache-starved configuration and measure eviction thrash instead of lock
        // granularity; equal per-store budgets compare the concurrency paths fairly.
        let storage = storage_backend_from_env(scale, &format!("ingest-s{shards}-t{threads}"));
        let sketch = ShardedGss::with_storage_durability(
            config,
            shards,
            &storage,
            gss_experiments::durability_from_env(),
        )
        .expect("valid config");
        let chunk_size = items.len().div_ceil(threads);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for chunk in items.chunks(chunk_size) {
                let handle = sketch.clone();
                scope.spawn(move || {
                    for batch in chunk.chunks(BATCH) {
                        handle.insert_batch(batch);
                    }
                });
            }
        });
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(
            sketch.stats().items_inserted,
            items.len() as u64,
            "writers must not lose items"
        );
        // Unlink this run's shard files before the next one starts: a deleted file's
        // dirty pages are discarded, so finished repeats stop queueing kernel
        // write-back behind the higher-thread-count configurations later in the sweep.
        drop(sketch);
        remove_run_files(&storage);
        best = best.min(elapsed);
    }
    best
}

fn main() {
    let scale = gss_bench::bench_scale("ingest_scaling");
    let items = zipf_stream(stream_items(scale), 60_000, 0x001A_6E57);
    // The paper sizes the matrix near the distinct-edge count (>90% load in Section
    // VII); at that load a single sketch walks long candidate chains and spills to the
    // buffer, so sharding relieves probing pressure on top of lock contention.
    let config = GssConfig::paper_default(160);

    let mut table = Table::new(
        format!("Ingest scaling — {} Zipf items ({} scale)", items.len(), scale.name()),
        &["threads", "single_lock_mitems_s", "sharded_mitems_s", "speedup"],
    );
    let storage_name = match storage_backend_from_env(scale, "probe") {
        gss_core::StorageBackend::Memory => "memory",
        gss_core::StorageBackend::File { .. } => "file",
    };
    // File-backed runs get their own report file so the two trajectories accumulate
    // side by side instead of overwriting each other.
    let report_name = if storage_name == "file" { "ingest_file" } else { "ingest" };
    let mut report = BenchReport::new(report_name)
        .context("scale", scale.name())
        .context("storage", storage_name)
        .context("items", items.len())
        .context("distinct_vertices", 60_000)
        .context("zipf_exponent", "1.1")
        .context("width", config.width)
        .context("batch", BATCH)
        .context("repeats", REPEATS);

    let mitems = |seconds: f64| items.len() as f64 / seconds / 1e6;
    for threads in THREAD_COUNTS {
        let single_seconds = measure(config, 1, threads, &items, scale);
        let sharded_seconds = measure(config, threads, threads, &items, scale);
        report.push(
            "single_lock",
            &[
                ("threads", threads as f64),
                ("shards", 1.0),
                ("seconds", single_seconds),
                ("mitems_per_sec", mitems(single_seconds)),
            ],
        );
        report.push(
            "sharded",
            &[
                ("threads", threads as f64),
                ("shards", threads as f64),
                ("seconds", sharded_seconds),
                ("mitems_per_sec", mitems(sharded_seconds)),
            ],
        );
        table.push_row(vec![
            threads.to_string(),
            fmt_float(mitems(single_seconds)),
            fmt_float(mitems(sharded_seconds)),
            format!("{:.2}x", single_seconds / sharded_seconds),
        ]);
    }

    table.print();
    match report.write() {
        Ok(path) => println!("(json written to {})", path.display()),
        Err(error) => eprintln!("warning: could not write BENCH_ingest.json: {error}"),
    }
}
