//! Regenerates Fig. 10: average precision of 1-hop successor queries vs matrix width, for
//! GSS and TCM at the paper's (scale-capped) memory ratio, on all five datasets.

use gss_bench::{bench_scale, emit};
use gss_datasets::SyntheticDataset;
use gss_experiments::{run_accuracy_figure, AccuracyFigure, Table};

fn main() {
    let scale = bench_scale("fig10_successor_precision");
    let tables: Vec<Table> = SyntheticDataset::ALL
        .iter()
        .map(|&dataset| run_accuracy_figure(AccuracyFigure::SuccessorPrecision, dataset, scale))
        .collect();
    emit(&tables, "fig10_successor_precision");
}
