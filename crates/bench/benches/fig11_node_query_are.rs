//! Regenerates Fig. 11: average relative error of node queries (total out-going weight of a
//! node) vs matrix width, for GSS and TCM, on all five datasets.

use gss_bench::{bench_scale, emit};
use gss_datasets::SyntheticDataset;
use gss_experiments::{run_accuracy_figure, AccuracyFigure, Table};

fn main() {
    let scale = bench_scale("fig11_node_query_are");
    let tables: Vec<Table> = SyntheticDataset::ALL
        .iter()
        .map(|&dataset| run_accuracy_figure(AccuracyFigure::NodeQueryAre, dataset, scale))
        .collect();
    emit(&tables, "fig11_node_query_are");
}
