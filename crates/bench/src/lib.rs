//! # gss-bench — benchmark harness
//!
//! One `harness = false` bench target per table/figure of the paper (see `DESIGN.md` for the
//! index).  Accuracy figures print the same x/y series the paper plots and write CSVs under
//! `target/experiments/`; timing targets (Table I, `micro_operations`) additionally run
//! under Criterion.
//!
//! All targets read the experiment scale from the `GSS_SCALE` environment variable
//! (`smoke` — default, `laptop`, `paper`).
//!
//! ## Quick start
//!
//! ```
//! use gss_bench::bench_scale;
//!
//! // Prints the self-describing banner and returns the scale selected via GSS_SCALE.
//! let scale = bench_scale("doctest");
//! assert!(!scale.name().is_empty());
//! ```

use gss_experiments::ExperimentScale;

pub use gss_experiments::emit;

/// The scale selected for this bench run, with a banner so logs are self-describing.
pub fn bench_scale(target: &str) -> ExperimentScale {
    let scale = ExperimentScale::from_env();
    println!(
        "## {target} — GSS paper reproduction bench (scale: {}, set GSS_SCALE=laptop|paper to \
         enlarge)\n",
        scale.name()
    );
    scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_experiments::{experiments_dir, Table};

    #[test]
    fn emit_writes_numbered_csvs_for_multiple_tables() {
        let mut a = Table::new("a", &["x"]);
        a.push_row(vec!["1".into()]);
        let b = Table::new("b", &["y"]);
        emit(&[a, b], "bench_emit_test");
        let dir = experiments_dir();
        assert!(dir.join("bench_emit_test_0.csv").exists());
        assert!(dir.join("bench_emit_test_1.csv").exists());
        std::fs::remove_file(dir.join("bench_emit_test_0.csv")).ok();
        std::fs::remove_file(dir.join("bench_emit_test_1.csv")).ok();
    }

    #[test]
    fn bench_scale_defaults_to_smoke_without_env() {
        // The test environment does not set GSS_SCALE (and if it does, the call still
        // returns a valid scale).
        let scale = bench_scale("unit-test");
        assert!(matches!(
            scale,
            ExperimentScale::Smoke | ExperimentScale::Laptop | ExperimentScale::Paper
        ));
    }
}
