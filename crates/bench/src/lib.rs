//! # gss-bench — benchmark harness
//!
//! One `harness = false` bench target per table/figure of the paper (see `DESIGN.md` for the
//! index).  Accuracy figures print the same x/y series the paper plots and write CSVs under
//! `target/experiments/`; timing targets (Table I, `micro_operations`) additionally run
//! under Criterion.
//!
//! All targets read the experiment scale from the `GSS_SCALE` environment variable
//! (`smoke` — default, `laptop`, `paper`).

use gss_experiments::{experiments_dir, ExperimentScale, Table};

/// Prints each table and writes it as CSV under `target/experiments/`.
///
/// `name` is the CSV base name; multiple tables get `_0`, `_1`, … suffixes.
pub fn emit(tables: &[Table], name: &str) {
    let dir = experiments_dir();
    for (index, table) in tables.iter().enumerate() {
        table.print();
        let file =
            if tables.len() == 1 { name.to_string() } else { format!("{name}_{index}") };
        match table.write_csv(&dir, &file) {
            Ok(path) => println!("(csv written to {})\n", path.display()),
            Err(error) => eprintln!("warning: could not write csv for {file}: {error}\n"),
        }
    }
}

/// The scale selected for this bench run, with a banner so logs are self-describing.
pub fn bench_scale(target: &str) -> ExperimentScale {
    let scale = ExperimentScale::from_env();
    println!(
        "## {target} — GSS paper reproduction bench (scale: {}, set GSS_SCALE=laptop|paper to \
         enlarge)\n",
        scale.name()
    );
    scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_writes_numbered_csvs_for_multiple_tables() {
        let mut a = Table::new("a", &["x"]);
        a.push_row(vec!["1".into()]);
        let b = Table::new("b", &["y"]);
        emit(&[a, b], "bench_emit_test");
        let dir = experiments_dir();
        assert!(dir.join("bench_emit_test_0.csv").exists());
        assert!(dir.join("bench_emit_test_1.csv").exists());
        std::fs::remove_file(dir.join("bench_emit_test_0.csv")).ok();
        std::fs::remove_file(dir.join("bench_emit_test_1.csv")).ok();
    }

    #[test]
    fn bench_scale_defaults_to_smoke_without_env() {
        // The test environment does not set GSS_SCALE (and if it does, the call still
        // returns a valid scale).
        let scale = bench_scale("unit-test");
        assert!(matches!(
            scale,
            ExperimentScale::Smoke | ExperimentScale::Laptop | ExperimentScale::Paper
        ));
    }
}
