//! Collision-rate analysis (Section VI-B / VI-C, Fig. 3).
//!
//! For an edge `e = (s, d)` with `D` adjacent edges (edges sharing `s` as source or `d` as
//! destination) in a graph of `|E|` edges, and a node-hash range `M`:
//!
//! * a non-adjacent edge collides with `e` with probability `1/M²` (both endpoints must
//!   collide),
//! * an adjacent edge collides with probability `1/M` (the shared endpoint already agrees),
//!
//! so the probability that *no* edge collides with `e` — the *correct rate* `P` — is
//!
//! ```text
//! P = (1 − 1/M²)^(|E|−D) · (1 − 1/M)^D ≈ exp(−(|E| − D)/M² − D/M)
//!                                        = exp(−(|E| + (M−1)·D) / M²)        (Eq. 12)
//! ```
//!
//! The primitive correct rates follow: the edge query is correct with probability `P`; a
//! 1-hop successor (precursor) query for a node of out-degree (in-degree) `d` is correct
//! only if none of the `|V| − d` non-neighbours collides into the neighbourhood, i.e. with
//! probability `P^(|V|−d)` (Section VI-B).

/// Probability that at least one other edge collides with the queried edge (`P̂ = 1 − P`).
///
/// * `hash_range` — `M`, the range of the node map function (`m·F` for GSS, `m` for TCM).
/// * `total_edges` — `|E|`.
/// * `adjacent_edges` — `D`, edges sharing the queried edge's source or destination.
pub fn edge_collision_probability(hash_range: f64, total_edges: f64, adjacent_edges: f64) -> f64 {
    1.0 - edge_query_correct_rate(hash_range, total_edges, adjacent_edges)
}

/// The correct rate `P` of an edge query (Equation 12).
pub fn edge_query_correct_rate(hash_range: f64, total_edges: f64, adjacent_edges: f64) -> f64 {
    assert!(hash_range >= 1.0, "hash range must be at least 1");
    assert!(total_edges >= 0.0 && adjacent_edges >= 0.0, "counts must be non-negative");
    let m = hash_range;
    let exponent = (total_edges + (m - 1.0) * adjacent_edges) / (m * m);
    (-exponent).exp()
}

/// The correct rate of a 1-hop successor query for a node with the given out-degree in a
/// graph with `total_vertices` nodes: every non-successor must avoid colliding into the
/// successor set, so the rate is `P^(|V| − d_out)` with `P` evaluated for a typical incident
/// edge (`D ≈ d_out`).
pub fn successor_query_correct_rate(
    hash_range: f64,
    total_edges: f64,
    total_vertices: f64,
    out_degree: f64,
) -> f64 {
    let p = edge_query_correct_rate(hash_range, total_edges, out_degree);
    p.powf((total_vertices - out_degree).max(0.0))
}

/// The correct rate of a 1-hop precursor query (symmetric to the successor query).
pub fn precursor_query_correct_rate(
    hash_range: f64,
    total_edges: f64,
    total_vertices: f64,
    in_degree: f64,
) -> f64 {
    successor_query_correct_rate(hash_range, total_edges, total_vertices, in_degree)
}

/// TCM's edge-query correct rate: same formula with `M = m` (the matrix width), because TCM
/// has no fingerprints (Section VI-C closing remark).
pub fn tcm_edge_query_correct_rate(width: f64, total_edges: f64, adjacent_edges: f64) -> f64 {
    edge_query_correct_rate(width, total_edges, adjacent_edges)
}

/// One point of the Fig. 3 curves: correct rate as a function of `M / |V|` and the relevant
/// degree, for a graph with `edges_per_vertex` average degree.
pub fn figure3_point(
    m_over_v: f64,
    degree: f64,
    total_vertices: f64,
    edges_per_vertex: f64,
    kind: Figure3Kind,
) -> f64 {
    let hash_range = m_over_v * total_vertices;
    let total_edges = edges_per_vertex * total_vertices;
    match kind {
        Figure3Kind::EdgeQuery => edge_query_correct_rate(hash_range, total_edges, degree),
        Figure3Kind::SuccessorQuery => {
            successor_query_correct_rate(hash_range, total_edges, total_vertices, degree)
        }
        Figure3Kind::PrecursorQuery => {
            precursor_query_correct_rate(hash_range, total_edges, total_vertices, degree)
        }
    }
}

/// Which panel of Fig. 3 a point belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure3Kind {
    /// Fig. 3(a): edge query.
    EdgeQuery,
    /// Fig. 3(b): 1-hop successor query.
    SuccessorQuery,
    /// Fig. 3(c): 1-hop precursor query.
    PrecursorQuery,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example_for_gss() {
        // Section VI-C: F = 256, m = 1000 (so M = 256,000), |E| = 5×10^5, D = 200 gives a
        // correct rate of e^{-0.00078} ≈ 0.9992.
        let rate = edge_query_correct_rate(256_000.0, 5e5, 200.0);
        assert!((rate - 0.9992).abs() < 2e-4, "rate {rate}");
    }

    #[test]
    fn paper_worked_example_for_tcm() {
        // Same setting for TCM (M = m = 1000) gives ≈ 0.497.
        let rate = tcm_edge_query_correct_rate(1000.0, 5e5, 200.0);
        assert!((rate - 0.497).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn correct_rate_increases_with_hash_range() {
        let small = edge_query_correct_rate(1_000.0, 1e6, 100.0);
        let large = edge_query_correct_rate(1_000_000.0, 1e6, 100.0);
        assert!(large > small);
        assert!(large <= 1.0 && small >= 0.0);
    }

    #[test]
    fn correct_rate_decreases_with_degree_and_edges() {
        let low_degree = edge_query_correct_rate(100_000.0, 1e6, 10.0);
        let high_degree = edge_query_correct_rate(100_000.0, 1e6, 10_000.0);
        assert!(low_degree > high_degree);
        let few_edges = edge_query_correct_rate(100_000.0, 1e5, 10.0);
        assert!(few_edges > low_degree);
    }

    #[test]
    fn collision_probability_is_complement() {
        let p = edge_query_correct_rate(50_000.0, 2e5, 50.0);
        let collision = edge_collision_probability(50_000.0, 2e5, 50.0);
        assert!((p + collision - 1.0).abs() < 1e-12);
    }

    #[test]
    fn successor_rate_matches_figure3_shape() {
        // Section IV: "only when M/|V| > 200, the accuracy ratio is larger than 80%" and at
        // M/|V| ≤ 1 it "falls down to nearly 0" (for the 1-hop queries).
        let v = 100_000.0;
        let degree = 10.0;
        let high = successor_query_correct_rate(250.0 * v, 10.0 * v, v, degree);
        assert!(high > 0.8, "M/|V| = 250 should exceed 80% accuracy, got {high}");
        let low = successor_query_correct_rate(1.0 * v, 10.0 * v, v, degree);
        assert!(low < 0.01, "M/|V| = 1 should be near zero, got {low}");
    }

    #[test]
    fn successor_and_precursor_rates_are_symmetric() {
        let a = successor_query_correct_rate(1e6, 1e6, 1e5, 25.0);
        let b = precursor_query_correct_rate(1e6, 1e6, 1e5, 25.0);
        assert_eq!(a, b);
    }

    #[test]
    fn figure3_point_dispatches_by_kind() {
        let v = 10_000.0;
        let edge = figure3_point(100.0, 20.0, v, 10.0, Figure3Kind::EdgeQuery);
        let succ = figure3_point(100.0, 20.0, v, 10.0, Figure3Kind::SuccessorQuery);
        let prec = figure3_point(100.0, 20.0, v, 10.0, Figure3Kind::PrecursorQuery);
        assert!(edge > succ, "successor queries are strictly harder than edge queries");
        assert_eq!(succ, prec);
    }

    #[test]
    #[should_panic(expected = "hash range")]
    fn zero_hash_range_panics() {
        let _ = edge_query_correct_rate(0.0, 1.0, 1.0);
    }
}
