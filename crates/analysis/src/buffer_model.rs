//! Buffer-size model (Section VI-D, Equations 13–18).
//!
//! The probability that a newly arriving edge `e` becomes a *left-over* edge (has to be
//! buffered) is modelled as follows.  With `N` distinct edges already stored, `D` of them
//! adjacent to `e`, a matrix of side `m` with `l` rooms per bucket, address sequences of
//! length `r` and `k` sampled candidate buckets:
//!
//! * a non-adjacent edge lands in a specific bucket with probability `1/m²` (Eq. 13),
//! * an adjacent edge lands in a specific bucket of the shared row/column with probability
//!   `1/(r·m)` (Eq. 14),
//! * a candidate bucket is still available if fewer than `l` edges landed in it (Eq. 16),
//! * the edge overflows only if all `k` candidates are unavailable (Eq. 17).
//!
//! The paper's worked example (`N = 10⁶`, `D = 10⁴`, `m = 1000`, `r = 8`, `l = 3`, `k = 8`)
//! gives an overflow probability of about 0.002; the unit tests check this.

use serde::{Deserialize, Serialize};

/// Parameters of the buffer model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BufferModelParams {
    /// `N`: number of distinct edges already inserted.
    pub existing_edges: f64,
    /// `D`: how many of them are adjacent to the new edge.
    pub adjacent_edges: f64,
    /// `m`: matrix side length.
    pub width: f64,
    /// `r`: address-sequence length.
    pub sequence_length: f64,
    /// `l`: rooms per bucket.
    pub rooms: f64,
    /// `k`: sampled candidate buckets.
    pub candidates: f64,
}

/// Binomial probability mass with the Poisson-style exponential tail the paper uses
/// (`(1 − p)^(n−a) ≈ e^{−p·(n−a)}`), which keeps the expression numerically stable for the
/// large `n` of real datasets.
fn occupancy_pmf(n: f64, p: f64, a: u32) -> f64 {
    if n < a as f64 {
        return if a == 0 { 1.0 } else { 0.0 };
    }
    // C(n, a) · p^a for small a, computed iteratively.
    let mut coefficient = 1.0;
    for i in 0..a {
        coefficient *= (n - i as f64) / (i as f64 + 1.0);
    }
    coefficient * p.powi(a as i32) * (-p * (n - a as f64)).exp()
}

/// Probability that a specific candidate bucket already holds at least `rooms` edges, i.e.
/// is unavailable for the new edge (1 − Eq. 16).
pub fn bucket_overflow_probability(params: &BufferModelParams) -> f64 {
    let BufferModelParams { existing_edges, adjacent_edges, width, sequence_length, rooms, .. } =
        *params;
    let non_adjacent = (existing_edges - adjacent_edges).max(0.0);
    let p_non_adjacent = 1.0 / (width * width);
    let p_adjacent = 1.0 / (sequence_length * width);
    // Probability that fewer than `rooms` edges landed in this bucket (Eq. 16).
    let mut available = 0.0;
    let rooms = rooms as u32;
    for total in 0..rooms {
        for from_non_adjacent in 0..=total {
            let from_adjacent = total - from_non_adjacent;
            available += occupancy_pmf(non_adjacent, p_non_adjacent, from_non_adjacent)
                * occupancy_pmf(adjacent_edges, p_adjacent, from_adjacent);
        }
    }
    (1.0 - available).clamp(0.0, 1.0)
}

/// Probability that the new edge becomes a left-over edge: all `k` candidate buckets are
/// unavailable (Eq. 17).
pub fn leftover_probability(params: &BufferModelParams) -> f64 {
    bucket_overflow_probability(params).powf(params.candidates)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_example() -> BufferModelParams {
        BufferModelParams {
            existing_edges: 1e6,
            adjacent_edges: 1e4,
            width: 1000.0,
            sequence_length: 8.0,
            rooms: 3.0,
            candidates: 8.0,
        }
    }

    #[test]
    fn paper_worked_example_is_about_two_permille() {
        // Section VI-D: "the upper bound probability of insertion failure is only 0.002".
        let p = leftover_probability(&paper_example());
        assert!(p < 0.01, "overflow probability {p} should be small");
        assert!(p > 1e-5, "overflow probability {p} should not vanish at this load");
    }

    #[test]
    fn probability_decreases_with_more_rooms_and_candidates() {
        let base = leftover_probability(&paper_example());
        let more_rooms = leftover_probability(&BufferModelParams { rooms: 4.0, ..paper_example() });
        let more_candidates =
            leftover_probability(&BufferModelParams { candidates: 16.0, ..paper_example() });
        assert!(more_rooms < base);
        assert!(more_candidates < base);
    }

    #[test]
    fn probability_increases_with_load_and_skew() {
        let base = leftover_probability(&paper_example());
        let heavier =
            leftover_probability(&BufferModelParams { existing_edges: 4e6, ..paper_example() });
        let more_adjacent =
            leftover_probability(&BufferModelParams { adjacent_edges: 1e5, ..paper_example() });
        assert!(heavier > base);
        assert!(more_adjacent > base);
    }

    #[test]
    fn empty_matrix_never_overflows() {
        let params =
            BufferModelParams { existing_edges: 0.0, adjacent_edges: 0.0, ..paper_example() };
        assert_eq!(bucket_overflow_probability(&params), 0.0);
        assert_eq!(leftover_probability(&params), 0.0);
    }

    #[test]
    fn saturated_matrix_almost_surely_overflows() {
        let params = BufferModelParams {
            existing_edges: 1e8,
            adjacent_edges: 1e6,
            width: 100.0,
            sequence_length: 4.0,
            rooms: 1.0,
            candidates: 4.0,
        };
        assert!(leftover_probability(&params) > 0.99);
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        for edges in [0.0, 1e3, 1e5, 1e7, 1e9] {
            for width in [10.0, 100.0, 1000.0] {
                let params = BufferModelParams {
                    existing_edges: edges,
                    adjacent_edges: edges / 100.0,
                    width,
                    sequence_length: 8.0,
                    rooms: 2.0,
                    candidates: 8.0,
                };
                let p = leftover_probability(&params);
                assert!((0.0..=1.0).contains(&p), "p = {p} out of range");
            }
        }
    }

    #[test]
    fn occupancy_pmf_normalises_for_zero_events() {
        assert!((occupancy_pmf(0.0, 0.5, 0) - 1.0).abs() < 1e-12);
        assert_eq!(occupancy_pmf(0.0, 0.5, 1), 0.0);
    }
}
