//! Memory accounting for the ratio-memory comparisons of Section VII-C.
//!
//! The paper fixes the memory ratio between TCM and GSS ("in edge query primitives, we allow
//! TCM to use 8 times memory, and in other queries we implement it with 256 times memory …
//! This ratio is the memory used by all the 4 sketches in TCM divided by the memory used by
//! GSS with 16 bit fingerprint").  These helpers compute both sides of that ratio so every
//! experiment sizes TCM the same way.

use serde::{Deserialize, Serialize};

/// Memory model of a GSS matrix with the paper's room layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Matrix side length `m`.
    pub width: usize,
    /// Rooms per bucket `l`.
    pub rooms: usize,
    /// Fingerprint length in bits.
    pub fingerprint_bits: u32,
}

impl MemoryModel {
    /// Bytes per room: two fingerprints, one packed index byte, an 8-byte counter.
    pub fn bytes_per_room(&self) -> usize {
        (2 * self.fingerprint_bits as usize).div_ceil(8) + 1 + 8
    }

    /// Total matrix bytes.
    pub fn total_bytes(&self) -> usize {
        self.width * self.width * self.rooms * self.bytes_per_room()
    }
}

/// Total bytes of a GSS matrix with the given geometry.
pub fn gss_memory_bytes(width: usize, rooms: usize, fingerprint_bits: u32) -> usize {
    MemoryModel { width, rooms, fingerprint_bits }.total_bytes()
}

/// Total bytes of a TCM summary with `depth` counter matrices of side `width` (8-byte
/// counters).
pub fn tcm_memory_bytes(width: usize, depth: usize) -> usize {
    width * width * depth * 8
}

/// The TCM matrix width that gives `ratio ×` the memory of the reference GSS configuration,
/// spread over `depth` sketch copies — the sizing rule used by every figure.
pub fn tcm_width_for_ratio(
    gss_width: usize,
    gss_rooms: usize,
    gss_fingerprint_bits: u32,
    ratio: f64,
    depth: usize,
) -> usize {
    let budget = gss_memory_bytes(gss_width, gss_rooms, gss_fingerprint_bits) as f64 * ratio;
    let counters_per_matrix = budget / depth as f64 / 8.0;
    counters_per_matrix.sqrt().floor().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_per_room_matches_fingerprint_width() {
        assert_eq!(MemoryModel { width: 1, rooms: 1, fingerprint_bits: 16 }.bytes_per_room(), 13);
        assert_eq!(MemoryModel { width: 1, rooms: 1, fingerprint_bits: 12 }.bytes_per_room(), 12);
        assert_eq!(MemoryModel { width: 1, rooms: 1, fingerprint_bits: 8 }.bytes_per_room(), 11);
    }

    #[test]
    fn totals_scale_with_geometry() {
        assert_eq!(gss_memory_bytes(1000, 2, 16), 1000 * 1000 * 2 * 13);
        assert_eq!(tcm_memory_bytes(1000, 4), 1000 * 1000 * 4 * 8);
    }

    #[test]
    fn ratio_sizing_gives_roughly_the_requested_ratio() {
        let gss_bytes = gss_memory_bytes(1000, 2, 16);
        for ratio in [1.0, 8.0, 16.0, 256.0] {
            let width = tcm_width_for_ratio(1000, 2, 16, ratio, 4);
            let tcm_bytes = tcm_memory_bytes(width, 4);
            let achieved = tcm_bytes as f64 / gss_bytes as f64;
            assert!(
                (achieved - ratio).abs() / ratio < 0.01,
                "ratio {ratio}: achieved {achieved} with width {width}"
            );
        }
    }

    #[test]
    fn eight_times_memory_beats_gss_width_substantially() {
        // Sanity: at 8× memory and depth 4, each TCM matrix is still much wider than m,
        // yet its hash range (= width) remains far below GSS's m·F.
        let width = tcm_width_for_ratio(1000, 2, 16, 8.0, 4);
        assert!(width > 2000, "width {width}");
        assert!((width as u64) < 1000 * (1u64 << 16));
    }

    #[test]
    fn ratio_sizing_never_returns_zero() {
        assert!(tcm_width_for_ratio(1, 1, 8, 0.001, 4) >= 1);
    }
}
