//! # gss-analysis — the closed-form models of Section VI
//!
//! The paper derives three analytical results that this crate reproduces as plain functions
//! so the benchmark harness can plot them (Fig. 3) and check them against measurements:
//!
//! * [`collision`] — the edge-collision probability and the correct-rate of the three query
//!   primitives as a function of the hash range `M`, the graph size `|E|`/`|V|` and node
//!   degrees (Equations 8–12, Fig. 3).
//! * [`buffer_model`] — the probability that an edge becomes a *left-over* edge (is pushed
//!   to the buffer) as a function of the matrix geometry and the degree of its endpoints
//!   (Equations 13–18).
//! * [`memory`] — memory accounting helpers comparing the paper's GSS and TCM layouts,
//!   used to size the ratio-memory comparisons of Section VII.
//!
//! ## Quick start
//!
//! ```
//! use gss_analysis::edge_query_correct_rate;
//!
//! // Growing the hash range M with |E| and degree fixed can only help (Fig. 3 shape).
//! let small = edge_query_correct_rate(1_000.0, 10_000.0, 10.0);
//! let large = edge_query_correct_rate(1_000_000.0, 10_000.0, 10.0);
//! assert!(large >= small);
//! assert!((0.0..=1.0).contains(&small) && (0.0..=1.0).contains(&large));
//! ```

pub mod buffer_model;
pub mod collision;
pub mod memory;

pub use buffer_model::{bucket_overflow_probability, leftover_probability, BufferModelParams};
pub use collision::{
    edge_collision_probability, edge_query_correct_rate, precursor_query_correct_rate,
    successor_query_correct_rate, tcm_edge_query_correct_rate,
};
pub use memory::{gss_memory_bytes, tcm_memory_bytes, tcm_width_for_ratio, MemoryModel};
