//! The GSS wire protocol: versioned, CRC-framed, length-prefixed binary frames.
//!
//! The protocol is deliberately in the style of the write-ahead-log frame format
//! ([`gss_core::wal`]): a fixed header carrying magic, version, kind and payload
//! length, then the payload, with a CRC-32 sealing header and payload together.  A
//! frame is the unit of both directions — every request is one frame, every response
//! is one frame.
//!
//! ## Frame layout
//!
//! ```text
//! [0 .. 4)    magic "GSSP"
//! [4]         version (1)
//! [5]         kind — request opcode or response status (see below)
//! [6 .. 10)   payload length u32 (little-endian, ≤ 8 MiB)
//! [10 .. 14)  crc32 over bytes [0..10) ++ payload (the WAL's polynomial)
//! [14 .. )    payload
//! ```
//!
//! ## Robustness contract
//!
//! [`decode_frame`] and the payload decoders never panic: truncated, bit-flipped,
//! oversized-length and garbage inputs all yield a typed [`ProtocolError`] — the same
//! contract `tests/snapshot_robustness.rs` pins for snapshot decoding, pinned for the
//! wire by `tests/protocol_robustness.rs`.  The length field is bounds-checked
//! *before* any allocation, so a lying length cannot pre-allocate memory.
//!
//! ## Kinds
//!
//! Requests: `0x01` HELLO (tenant, token), `0x02` INGEST, `0x03` EDGE,
//! `0x04` SUCCESSORS, `0x05` PRECURSORS, `0x06` REACHABLE, `0x07` SNAPSHOT,
//! `0x08` STATS, `0x09` HEALTH.
//!
//! Responses: `0x80` OK (empty), `0x81` INGESTED, `0x82` EDGE_WEIGHT,
//! `0x83` VERTICES, `0x84` BOOL, `0x85` STATS, `0x86` HEALTH, `0xE0` ERROR
//! (code u16 + message; error codes below `0x0100` are server/protocol codes in
//! [`err`], codes `0x0100..0x02FF` carry [`gss_core::GssError::wire_code`]
//! unchanged, and `0x0300` marks a failed snapshot/checkpoint).

use gss_core::wal::crc32;
use std::fmt;

/// Magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"GSSP";
/// Protocol version carried in byte 4.
pub const VERSION: u8 = 1;
/// Fixed header size (magic + version + kind + length + crc).
pub const HEADER_BYTES: usize = 14;
/// Upper bound on a frame payload; a length field beyond this is rejected before any
/// allocation happens.
pub const MAX_PAYLOAD_BYTES: usize = 8 << 20;

/// Server/protocol error codes carried by [`Response::Error`].  Codes at `0x0100` and
/// above are reserved for [`gss_core::GssError::wire_code`] passthrough (`0x0100`
/// config, `0x0200 | fault` store-failed) and [`err::SNAPSHOT_FAILED`].
pub mod err {
    /// Malformed frame or payload.
    pub const PROTOCOL: u16 = 0x0001;
    /// The connection has not completed a HELLO yet.
    pub const AUTH_REQUIRED: u16 = 0x0002;
    /// Tenant exists but the token does not match.
    pub const AUTH_FAILED: u16 = 0x0003;
    /// No tenant of that name is configured.
    pub const UNKNOWN_TENANT: u16 = 0x0004;
    /// The tenant's token bucket is empty; retry after the hinted delay.
    pub const RATE_LIMITED: u16 = 0x0005;
    /// The server's connection cap is reached.
    pub const BUSY: u16 = 0x0006;
    /// The tenant could not be opened (bad namespace name, unrecoverable files).
    pub const TENANT_UNAVAILABLE: u16 = 0x0007;
    /// A snapshot/checkpoint request failed (persistence error; message has details).
    pub const SNAPSHOT_FAILED: u16 = 0x0300;
}

/// One stream item on the wire (timestamps are assigned server-side, in arrival
/// order, so clients do not fabricate them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireEdge {
    pub source: u64,
    pub destination: u64,
    pub weight: i64,
}

/// Tenant-level statistics returned by STATS: the sketch occupancy numbers a client
/// can see plus the honest durability account ([`gss_core::DurabilityReport`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    pub items_inserted: u64,
    pub matrix_edges: u64,
    pub buffered_edges: u64,
    pub shards: u32,
    pub poisoned: bool,
    pub acked_items: u64,
    pub durable_items: u64,
    pub breached_items: u64,
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Binds the connection to a tenant namespace; must be the first frame on a
    /// connection (HEALTH excepted).
    Hello { tenant: String, token: String },
    /// Batch ingest into the bound tenant.
    Ingest { items: Vec<WireEdge> },
    /// Edge-weight query.
    Edge { source: u64, destination: u64 },
    /// 1-hop successor query.
    Successors { vertex: u64 },
    /// 1-hop precursor query (fans out across shards server-side).
    Precursors { vertex: u64 },
    /// Reachability query (`max_hops == 0` means unbounded).
    Reachable { source: u64, destination: u64, max_hops: u32 },
    /// Checkpoint every shard of the bound tenant to disk.
    Snapshot,
    /// Tenant statistics and durability report.
    Stats,
    /// Server liveness (no authentication required).
    Health,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success with no payload (HELLO, SNAPSHOT).
    Ok,
    /// Ingest acknowledgement: what an ack *means* depends on the tenant's
    /// durability mode — see the README's guarantee table.
    Ingested { accepted: u64, acked_total: u64, durability: u8 },
    /// Edge weight, or `None` for "no such edge reported".
    EdgeWeight(Option<i64>),
    /// Successor/precursor answer.
    Vertices(Vec<u64>),
    /// Reachability answer.
    Bool(bool),
    /// Tenant statistics.
    Stats(WireStats),
    /// Server liveness: open namespaces and active connections.
    Health { namespaces: u32, connections: u32 },
    /// Typed failure; the connection stays open.
    Error { code: u16, message: String },
}

/// Durability byte values in [`Response::Ingested`].
pub const DURABILITY_STRICT: u8 = 0;
/// See [`DURABILITY_STRICT`].
pub const DURABILITY_BUFFERED: u8 = 1;

const REQ_HELLO: u8 = 0x01;
const REQ_INGEST: u8 = 0x02;
const REQ_EDGE: u8 = 0x03;
const REQ_SUCCESSORS: u8 = 0x04;
const REQ_PRECURSORS: u8 = 0x05;
const REQ_REACHABLE: u8 = 0x06;
const REQ_SNAPSHOT: u8 = 0x07;
const REQ_STATS: u8 = 0x08;
const REQ_HEALTH: u8 = 0x09;

const RESP_OK: u8 = 0x80;
const RESP_INGESTED: u8 = 0x81;
const RESP_EDGE: u8 = 0x82;
const RESP_VERTICES: u8 = 0x83;
const RESP_BOOL: u8 = 0x84;
const RESP_STATS: u8 = 0x85;
const RESP_HEALTH: u8 = 0x86;
const RESP_ERROR: u8 = 0xE0;

/// The typed decode failure: every way a frame can be damaged, none of them a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame does not start with `GSSP`.
    BadMagic,
    /// The version byte is not [`VERSION`].
    BadVersion(u8),
    /// Fewer bytes than the header (or the declared payload) requires.
    Truncated,
    /// The declared payload length exceeds [`MAX_PAYLOAD_BYTES`].
    Oversized(u32),
    /// The CRC does not match header + payload.
    BadCrc,
    /// The kind byte names no known request/response.
    UnknownKind(u8),
    /// The payload does not parse as its kind's layout.
    Malformed(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "bad frame magic"),
            Self::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            Self::Truncated => write!(f, "truncated frame"),
            Self::Oversized(len) => {
                write!(f, "payload length {len} exceeds the {MAX_PAYLOAD_BYTES}-byte cap")
            }
            Self::BadCrc => write!(f, "frame checksum mismatch"),
            Self::UnknownKind(kind) => write!(f, "unknown frame kind {kind:#04x}"),
            Self::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Seals `kind` + `payload` into one encoded frame.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_PAYLOAD_BYTES);
    let mut frame = Vec::with_capacity(HEADER_BYTES + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.push(VERSION);
    frame.push(kind);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut crc_input = frame.clone(); // bytes [0..10)
    crc_input.extend_from_slice(payload);
    frame.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Validates a header prefix (the first [`HEADER_BYTES`] bytes): magic, version and
/// length bounds — everything checkable *before* the payload arrives, so a reader
/// never allocates for a lying length.  Returns `(kind, payload_len)`.
pub fn decode_header(header: &[u8]) -> Result<(u8, usize), ProtocolError> {
    if header.len() < HEADER_BYTES {
        return Err(ProtocolError::Truncated);
    }
    if header[0..4] != MAGIC {
        return Err(ProtocolError::BadMagic);
    }
    if header[4] != VERSION {
        return Err(ProtocolError::BadVersion(header[4]));
    }
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    if len as usize > MAX_PAYLOAD_BYTES {
        return Err(ProtocolError::Oversized(len));
    }
    Ok((header[5], len as usize))
}

/// Checks a complete frame's CRC given its header and payload.
pub fn check_crc(header: &[u8; HEADER_BYTES], payload: &[u8]) -> Result<(), ProtocolError> {
    let declared = u32::from_le_bytes([header[10], header[11], header[12], header[13]]);
    let mut crc_input = Vec::with_capacity(10 + payload.len());
    crc_input.extend_from_slice(&header[..10]);
    crc_input.extend_from_slice(payload);
    if crc32(&crc_input) != declared {
        return Err(ProtocolError::BadCrc);
    }
    Ok(())
}

/// Decodes one whole frame from an in-memory buffer (header checks, CRC, then kind
/// dispatch is left to the caller).  Returns `(kind, payload, bytes_consumed)`.
pub fn decode_frame(buf: &[u8]) -> Result<(u8, &[u8], usize), ProtocolError> {
    let (kind, len) = decode_header(buf)?;
    let total = HEADER_BYTES + len;
    if buf.len() < total {
        return Err(ProtocolError::Truncated);
    }
    let header: &[u8; HEADER_BYTES] =
        buf[..HEADER_BYTES].try_into().map_err(|_| ProtocolError::Truncated)?;
    let payload = &buf[HEADER_BYTES..total];
    check_crc(header, payload)?;
    Ok((kind, payload, total))
}

/// Bounds-checked little-endian payload reader; every getter is a `Result`, so a
/// payload can end (or lie) anywhere without panicking the decoder.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.at.checked_add(n).ok_or(ProtocolError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(ProtocolError::Malformed("payload shorter than its fields"));
        }
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn i64(&mut self) -> Result<i64, ProtocolError> {
        Ok(self.u64()? as i64)
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::Malformed("non-UTF-8 string"))
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.at != self.buf.len() {
            return Err(ProtocolError::Malformed("trailing bytes after payload"));
        }
        Ok(())
    }
}

fn push_string(out: &mut Vec<u8>, s: &str) {
    let len = s.len().min(u16::MAX as usize) as u16;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&s.as_bytes()[..len as usize]);
}

/// Encodes a request as one frame.
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut payload = Vec::new();
    let kind = match request {
        Request::Hello { tenant, token } => {
            push_string(&mut payload, tenant);
            push_string(&mut payload, token);
            REQ_HELLO
        }
        Request::Ingest { items } => {
            payload.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                payload.extend_from_slice(&item.source.to_le_bytes());
                payload.extend_from_slice(&item.destination.to_le_bytes());
                payload.extend_from_slice(&item.weight.to_le_bytes());
            }
            REQ_INGEST
        }
        Request::Edge { source, destination } => {
            payload.extend_from_slice(&source.to_le_bytes());
            payload.extend_from_slice(&destination.to_le_bytes());
            REQ_EDGE
        }
        Request::Successors { vertex } => {
            payload.extend_from_slice(&vertex.to_le_bytes());
            REQ_SUCCESSORS
        }
        Request::Precursors { vertex } => {
            payload.extend_from_slice(&vertex.to_le_bytes());
            REQ_PRECURSORS
        }
        Request::Reachable { source, destination, max_hops } => {
            payload.extend_from_slice(&source.to_le_bytes());
            payload.extend_from_slice(&destination.to_le_bytes());
            payload.extend_from_slice(&max_hops.to_le_bytes());
            REQ_REACHABLE
        }
        Request::Snapshot => REQ_SNAPSHOT,
        Request::Stats => REQ_STATS,
        Request::Health => REQ_HEALTH,
    };
    encode_frame(kind, &payload)
}

/// Decodes a request payload for `kind` (as returned by [`decode_frame`]).
pub fn decode_request(kind: u8, payload: &[u8]) -> Result<Request, ProtocolError> {
    let mut r = Reader::new(payload);
    let request = match kind {
        REQ_HELLO => Request::Hello { tenant: r.string()?, token: r.string()? },
        REQ_INGEST => {
            let count = r.u32()? as usize;
            // Each item is 24 bytes; the count must fit the remaining payload before
            // any allocation sized by it.
            if count.checked_mul(24).map_or(true, |bytes| bytes > payload.len()) {
                return Err(ProtocolError::Malformed("ingest count exceeds payload"));
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(WireEdge { source: r.u64()?, destination: r.u64()?, weight: r.i64()? });
            }
            Request::Ingest { items }
        }
        REQ_EDGE => Request::Edge { source: r.u64()?, destination: r.u64()? },
        REQ_SUCCESSORS => Request::Successors { vertex: r.u64()? },
        REQ_PRECURSORS => Request::Precursors { vertex: r.u64()? },
        REQ_REACHABLE => {
            Request::Reachable { source: r.u64()?, destination: r.u64()?, max_hops: r.u32()? }
        }
        REQ_SNAPSHOT => Request::Snapshot,
        REQ_STATS => Request::Stats,
        REQ_HEALTH => Request::Health,
        other => return Err(ProtocolError::UnknownKind(other)),
    };
    r.finish()?;
    Ok(request)
}

/// Encodes a response as one frame.
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut payload = Vec::new();
    let kind = match response {
        Response::Ok => RESP_OK,
        Response::Ingested { accepted, acked_total, durability } => {
            payload.extend_from_slice(&accepted.to_le_bytes());
            payload.extend_from_slice(&acked_total.to_le_bytes());
            payload.push(*durability);
            RESP_INGESTED
        }
        Response::EdgeWeight(weight) => {
            match weight {
                Some(w) => {
                    payload.push(1);
                    payload.extend_from_slice(&w.to_le_bytes());
                }
                None => payload.push(0),
            }
            RESP_EDGE
        }
        Response::Vertices(vertices) => {
            payload.extend_from_slice(&(vertices.len() as u32).to_le_bytes());
            for v in vertices {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            RESP_VERTICES
        }
        Response::Bool(b) => {
            payload.push(u8::from(*b));
            RESP_BOOL
        }
        Response::Stats(stats) => {
            payload.extend_from_slice(&stats.items_inserted.to_le_bytes());
            payload.extend_from_slice(&stats.matrix_edges.to_le_bytes());
            payload.extend_from_slice(&stats.buffered_edges.to_le_bytes());
            payload.extend_from_slice(&stats.shards.to_le_bytes());
            payload.push(u8::from(stats.poisoned));
            payload.extend_from_slice(&stats.acked_items.to_le_bytes());
            payload.extend_from_slice(&stats.durable_items.to_le_bytes());
            payload.extend_from_slice(&stats.breached_items.to_le_bytes());
            RESP_STATS
        }
        Response::Health { namespaces, connections } => {
            payload.extend_from_slice(&namespaces.to_le_bytes());
            payload.extend_from_slice(&connections.to_le_bytes());
            RESP_HEALTH
        }
        Response::Error { code, message } => {
            payload.extend_from_slice(&code.to_le_bytes());
            push_string(&mut payload, message);
            RESP_ERROR
        }
    };
    encode_frame(kind, &payload)
}

/// Decodes a response payload for `kind` (as returned by [`decode_frame`]).
pub fn decode_response(kind: u8, payload: &[u8]) -> Result<Response, ProtocolError> {
    let mut r = Reader::new(payload);
    let response = match kind {
        RESP_OK => Response::Ok,
        RESP_INGESTED => {
            Response::Ingested { accepted: r.u64()?, acked_total: r.u64()?, durability: r.u8()? }
        }
        RESP_EDGE => match r.u8()? {
            0 => Response::EdgeWeight(None),
            1 => Response::EdgeWeight(Some(r.i64()?)),
            _ => return Err(ProtocolError::Malformed("edge presence flag")),
        },
        RESP_VERTICES => {
            let count = r.u32()? as usize;
            if count.checked_mul(8).map_or(true, |bytes| bytes > payload.len()) {
                return Err(ProtocolError::Malformed("vertex count exceeds payload"));
            }
            let mut vertices = Vec::with_capacity(count);
            for _ in 0..count {
                vertices.push(r.u64()?);
            }
            Response::Vertices(vertices)
        }
        RESP_BOOL => Response::Bool(r.u8()? != 0),
        RESP_STATS => Response::Stats(WireStats {
            items_inserted: r.u64()?,
            matrix_edges: r.u64()?,
            buffered_edges: r.u64()?,
            shards: r.u32()?,
            poisoned: r.u8()? != 0,
            acked_items: r.u64()?,
            durable_items: r.u64()?,
            breached_items: r.u64()?,
        }),
        RESP_HEALTH => Response::Health { namespaces: r.u32()?, connections: r.u32()? },
        RESP_ERROR => Response::Error { code: r.u16()?, message: r.string()? },
        other => return Err(ProtocolError::UnknownKind(other)),
    };
    r.finish()?;
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Hello { tenant: "alpha".into(), token: "secret".into() },
            Request::Ingest {
                items: vec![
                    WireEdge { source: 1, destination: 2, weight: 3 },
                    WireEdge { source: u64::MAX, destination: 0, weight: -7 },
                ],
            },
            Request::Edge { source: 4, destination: 5 },
            Request::Successors { vertex: 6 },
            Request::Precursors { vertex: 7 },
            Request::Reachable { source: 8, destination: 9, max_hops: 0 },
            Request::Snapshot,
            Request::Stats,
            Request::Health,
        ]
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Ok,
            Response::Ingested { accepted: 10, acked_total: 100, durability: DURABILITY_STRICT },
            Response::EdgeWeight(None),
            Response::EdgeWeight(Some(-42)),
            Response::Vertices(vec![]),
            Response::Vertices(vec![1, 2, 3]),
            Response::Bool(true),
            Response::Stats(WireStats {
                items_inserted: 1,
                matrix_edges: 2,
                buffered_edges: 3,
                shards: 4,
                poisoned: true,
                acked_items: 5,
                durable_items: 6,
                breached_items: 7,
            }),
            Response::Health { namespaces: 2, connections: 9 },
            Response::Error { code: err::RATE_LIMITED, message: "slow down".into() },
        ]
    }

    #[test]
    fn every_request_round_trips() {
        for request in all_requests() {
            let frame = encode_request(&request);
            let (kind, payload, consumed) = decode_frame(&frame).unwrap();
            assert_eq!(consumed, frame.len());
            assert_eq!(decode_request(kind, payload).unwrap(), request);
        }
    }

    #[test]
    fn every_response_round_trips() {
        for response in all_responses() {
            let frame = encode_response(&response);
            let (kind, payload, consumed) = decode_frame(&frame).unwrap();
            assert_eq!(consumed, frame.len());
            assert_eq!(decode_response(kind, payload).unwrap(), response);
        }
    }

    #[test]
    fn golden_health_frame_bytes_are_pinned() {
        // The byte-level wire contract the CI smoke job re-asserts over a live
        // socket: HEALTH is an empty-payload frame, fully determined by the header.
        let frame = encode_request(&Request::Health);
        let crc = crc32(&[b'G', b'S', b'S', b'P', VERSION, 0x09, 0, 0, 0, 0]);
        let mut expected = vec![b'G', b'S', b'S', b'P', VERSION, 0x09, 0, 0, 0, 0];
        expected.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(frame, expected);
    }

    #[test]
    fn damaged_frames_yield_typed_errors() {
        let frame = encode_request(&Request::Edge { source: 1, destination: 2 });
        assert_eq!(decode_frame(&frame[..5]), Err(ProtocolError::Truncated));
        assert_eq!(decode_frame(&frame[..frame.len() - 1]), Err(ProtocolError::Truncated));

        let mut bad_magic = frame.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(decode_frame(&bad_magic), Err(ProtocolError::BadMagic));

        let mut bad_version = frame.clone();
        bad_version[4] = 9;
        assert_eq!(decode_frame(&bad_version), Err(ProtocolError::BadVersion(9)));

        let mut oversized = frame.clone();
        oversized[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_frame(&oversized), Err(ProtocolError::Oversized(_))));

        let mut flipped = frame.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        assert_eq!(decode_frame(&flipped), Err(ProtocolError::BadCrc));
    }

    #[test]
    fn unknown_kinds_and_malformed_payloads_are_typed() {
        let frame = encode_frame(0x55, b"");
        let (kind, payload, _) = decode_frame(&frame).unwrap();
        assert_eq!(decode_request(kind, payload), Err(ProtocolError::UnknownKind(0x55)));
        assert_eq!(decode_response(kind, payload), Err(ProtocolError::UnknownKind(0x55)));

        // An ingest count claiming more items than the payload can hold must be
        // rejected before the count sizes an allocation.
        let mut payload = Vec::new();
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        let frame = encode_frame(0x02, &payload);
        let (kind, payload, _) = decode_frame(&frame).unwrap();
        assert_eq!(
            decode_request(kind, payload),
            Err(ProtocolError::Malformed("ingest count exceeds payload"))
        );

        // Trailing bytes are rejected, not silently ignored.
        let frame = encode_frame(0x07, b"extra");
        let (kind, payload, _) = decode_frame(&frame).unwrap();
        assert!(decode_request(kind, payload).is_err());
    }
}
