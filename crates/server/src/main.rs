//! The `gss-server` binary: bind, load tenants, serve until killed.
//!
//! ```text
//! gss-server --listen 127.0.0.1:0 --data-dir /var/lib/gss --config tenants.conf \
//!            [--max-connections 64]
//! ```
//!
//! On success it prints exactly one line, `listening on <addr>`, to stdout before
//! serving — the CI smoke job parses that line to learn the OS-assigned port.

use gss_server::{net, Server, ServerConfig, DEFAULT_MAX_CONNECTIONS};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    listen: String,
    data_dir: PathBuf,
    config: Option<PathBuf>,
    max_connections: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:7464".to_string(),
        data_dir: PathBuf::from("gss-data"),
        config: None,
        max_connections: DEFAULT_MAX_CONNECTIONS,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--data-dir" => args.data_dir = PathBuf::from(value("--data-dir")?),
            "--config" => args.config = Some(PathBuf::from(value("--config")?)),
            "--max-connections" => {
                args.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|_| "--max-connections needs a number".to_string())?
            }
            "--help" | "-h" => {
                return Err("usage: gss-server --listen ADDR --data-dir DIR \
                            --config FILE [--max-connections N]"
                    .to_string())
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("gss-server: {message}");
            return ExitCode::FAILURE;
        }
    };
    let config = match &args.config {
        None => ServerConfig::default(),
        Some(path) => {
            let text = match net::read_file_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("gss-server: cannot read {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            match ServerConfig::parse(&text) {
                Ok(config) => config,
                Err(message) => {
                    eprintln!("gss-server: {}: {message}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    if config.tenants.is_empty() {
        eprintln!("gss-server: warning: no tenants configured; only HEALTH will answer");
    }
    let server = match Server::bind(&args.listen, args.data_dir, config, args.max_connections) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("gss-server: cannot bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            // The smoke job parses this exact line to find the OS-assigned port.
            println!("listening on {addr}");
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("gss-server: cannot resolve bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    server.run();
    ExitCode::SUCCESS
}
