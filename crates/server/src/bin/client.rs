//! The `gss-client` binary: a small command-line driver over [`gss_server::GssClient`],
//! built for the CI smoke job and for poking a live server by hand.
//!
//! ```text
//! gss-client --addr HOST:PORT [--tenant NAME --token TOKEN] COMMAND...
//!
//!   health                      liveness probe (no tenant needed)
//!   ingest N [--batch B]        ingest the deterministic chain 1→2→…→N in batches,
//!                               printing `acked K` after each acknowledged batch
//!   verify N                    re-derive the chain and check every edge weight
//!   edge SRC DST                print the edge weight or `absent`
//!   successors V                print the successor list
//!   reachable SRC DST [HOPS]    print `true`/`false`
//!   snapshot                    checkpoint the tenant's shards
//!   stats                       print tenant statistics and the durability account
//!   poison-check                expect ingest to fail with a 0x02xx store error
//!   wirecheck                   byte-level protocol conformance against the server
//! ```
//!
//! The deterministic chain for `ingest`/`verify` is edges `(i, i+1)` with weight
//! `i` for `i` in `1..=N`: a client that was killed mid-ingest can be re-verified
//! up to its last printed `acked K` line, which is exactly what the CI smoke job's
//! SIGKILL-and-restart pass does.

use gss_server::protocol::{self, Request, Response};
use gss_server::{ClientError, GssClient};
use std::io::Write;
use std::process::ExitCode;

fn chain_edge(i: u64) -> (u64, u64, i64) {
    (i, i + 1, i as i64)
}

struct Cli {
    addr: String,
    tenant: Option<String>,
    token: Option<String>,
    command: Vec<String>,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli { addr: String::new(), tenant: None, token: None, command: Vec::new() };
    let mut argv = std::env::args().skip(1).peekable();
    while let Some(flag) = argv.peek() {
        match flag.as_str() {
            "--addr" => {
                argv.next();
                cli.addr = argv.next().ok_or("--addr needs a value")?;
            }
            "--tenant" => {
                argv.next();
                cli.tenant = Some(argv.next().ok_or("--tenant needs a value")?);
            }
            "--token" => {
                argv.next();
                cli.token = Some(argv.next().ok_or("--token needs a value")?);
            }
            _ => break,
        }
    }
    cli.command = argv.collect();
    if cli.addr.is_empty() {
        return Err("--addr HOST:PORT is required".to_string());
    }
    if cli.command.is_empty() {
        return Err("a command is required".to_string());
    }
    Ok(cli)
}

fn connect(cli: &Cli, with_tenant: bool) -> Result<GssClient, String> {
    let mut client =
        GssClient::connect(&cli.addr).map_err(|e| format!("connect {}: {e}", cli.addr))?;
    if with_tenant {
        let tenant = cli.tenant.as_deref().ok_or("--tenant is required for this command")?;
        let token = cli.token.as_deref().ok_or("--token is required for this command")?;
        client.hello(tenant, token).map_err(|e| format!("hello: {e}"))?;
    }
    Ok(client)
}

fn parse<T: std::str::FromStr>(word: Option<&String>, what: &str) -> Result<T, String> {
    word.ok_or_else(|| format!("{what} is required"))?.parse().map_err(|_| format!("bad {what}"))
}

fn run(cli: &Cli) -> Result<(), String> {
    let command = &cli.command;
    match command[0].as_str() {
        "health" => {
            let (namespaces, connections) =
                connect(cli, false)?.health().map_err(|e| format!("health: {e}"))?;
            println!("namespaces {namespaces} connections {connections}");
        }
        "ingest" => {
            let count: u64 = parse(command.get(1), "count")?;
            let batch_size: u64 = match command.get(2).map(String::as_str) {
                Some("--batch") => parse(command.get(3), "batch size")?,
                _ => 50,
            };
            let mut client = connect(cli, true)?;
            let mut acked = 0u64;
            while acked < count {
                let upto = (acked + batch_size.max(1)).min(count);
                let batch: Vec<_> = (acked + 1..=upto).map(chain_edge).collect();
                client.ingest(&batch).map_err(|e| format!("ingest: {e}"))?;
                acked = upto;
                // One line per acknowledged batch: the smoke job's kill-and-restart
                // pass replays the last `acked K` line as its recovery floor.
                println!("acked {acked}");
                std::io::stdout().flush().ok();
            }
        }
        "verify" => {
            let count: u64 = parse(command.get(1), "count")?;
            let mut client = connect(cli, true)?;
            for i in 1..=count {
                let (source, destination, weight) = chain_edge(i);
                let got = client
                    .edge(source, destination)
                    .map_err(|e| format!("edge {source}->{destination}: {e}"))?;
                // A sketch may over-count under collisions but an acked chain edge
                // must never vanish or under-count.
                match got {
                    Some(w) if w >= weight => {}
                    other => {
                        return Err(format!(
                            "edge {source}->{destination}: expected >= {weight}, got {other:?}"
                        ))
                    }
                }
            }
            println!("verified {count}");
        }
        "edge" => {
            let source = parse(command.get(1), "source")?;
            let destination = parse(command.get(2), "destination")?;
            match connect(cli, true)?.edge(source, destination).map_err(|e| e.to_string())? {
                Some(weight) => println!("{weight}"),
                None => println!("absent"),
            }
        }
        "successors" => {
            let vertex = parse(command.get(1), "vertex")?;
            let mut vertices = connect(cli, true)?.successors(vertex).map_err(|e| e.to_string())?;
            vertices.sort_unstable();
            println!("{vertices:?}");
        }
        "reachable" => {
            let source = parse(command.get(1), "source")?;
            let destination = parse(command.get(2), "destination")?;
            let hops: u32 =
                command.get(3).map_or(Ok(0), |w| w.parse().map_err(|_| "bad hops".to_string()))?;
            let answer = connect(cli, true)?
                .reachable(source, destination, hops)
                .map_err(|e| e.to_string())?;
            println!("{answer}");
        }
        "snapshot" => {
            connect(cli, true)?.snapshot().map_err(|e| format!("snapshot: {e}"))?;
            println!("snapshot ok");
        }
        "stats" => {
            let stats = connect(cli, true)?.stats().map_err(|e| format!("stats: {e}"))?;
            println!(
                "items {} matrix_edges {} buffered_edges {} shards {} poisoned {} \
                 acked {} durable {} breached {}",
                stats.items_inserted,
                stats.matrix_edges,
                stats.buffered_edges,
                stats.shards,
                stats.poisoned,
                stats.acked_items,
                stats.durable_items,
                stats.breached_items,
            );
        }
        "poison-check" => poison_check(cli)?,
        "wirecheck" => wirecheck(cli)?,
        other => return Err(format!("unknown command `{other}`")),
    }
    Ok(())
}

/// Asserts the fail-stop contract over the wire: ingest into a poisoned tenant must
/// come back as a typed `0x02xx` store-failed error on a connection that stays
/// open and keeps answering queries.
fn poison_check(cli: &Cli) -> Result<(), String> {
    let mut client = connect(cli, true)?;
    match client.ingest(&[(1, 2, 1)]) {
        Err(ClientError::Server { code, message }) if code & 0xFF00 == 0x0200 => {
            println!("poisoned ok: {code:#06x} {message}");
        }
        other => return Err(format!("expected a 0x02xx store error, got {other:?}")),
    }
    // The error above must not have cost us the connection.
    client.edge(1, 2).map_err(|e| format!("query after poison error: {e}"))?;
    println!("connection survived");
    Ok(())
}

/// Byte-level protocol conformance against a live server: pinned frame layout,
/// typed rejection of garbage and of lying length fields, and liveness afterwards.
fn wirecheck(cli: &Cli) -> Result<(), String> {
    // 1. The HEALTH frame layout is pinned: build it byte-by-byte and require the
    //    library encoder to agree exactly, then require the server to answer it.
    let mut handmade = Vec::new();
    handmade.extend_from_slice(b"GSSP");
    handmade.push(protocol::VERSION);
    handmade.push(0x09); // HEALTH opcode
    handmade.extend_from_slice(&0u32.to_le_bytes());
    handmade.extend_from_slice(&gss_core::wal::crc32(&handmade.clone()).to_le_bytes());
    let encoded = protocol::encode_request(&Request::Health);
    if handmade != encoded {
        return Err(format!("frame layout drifted: {handmade:02x?} vs {encoded:02x?}"));
    }
    let mut client = connect(cli, false)?;
    let (kind, payload) = client.raw_exchange(&handmade).map_err(|e| format!("raw health: {e}"))?;
    match protocol::decode_response(kind, &payload) {
        Ok(Response::Health { .. }) => println!("wirecheck: pinned health frame ok"),
        other => return Err(format!("raw health answered {other:?}")),
    }

    // 2. Garbage bytes must earn a typed PROTOCOL error frame, not a hang or crash.
    let mut client = connect(cli, false)?;
    let (kind, payload) = client
        .raw_exchange(b"HTTP/1.1 GET /metrics not a gss frame")
        .map_err(|e| format!("garbage exchange: {e}"))?;
    match protocol::decode_response(kind, &payload) {
        Ok(Response::Error { code, .. }) if code == protocol::err::PROTOCOL => {
            println!("wirecheck: garbage rejected with PROTOCOL error");
        }
        other => return Err(format!("garbage answered {other:?}")),
    }

    // 3. A lying length field (4 GiB payload) must be rejected from the header
    //    alone — before any allocation — with the same typed error.
    let mut oversized = Vec::new();
    oversized.extend_from_slice(b"GSSP");
    oversized.push(protocol::VERSION);
    oversized.push(0x09);
    oversized.extend_from_slice(&u32::MAX.to_le_bytes());
    oversized.extend_from_slice(&[0, 0, 0, 0]);
    let mut client = connect(cli, false)?;
    let (kind, payload) =
        client.raw_exchange(&oversized).map_err(|e| format!("oversized exchange: {e}"))?;
    match protocol::decode_response(kind, &payload) {
        Ok(Response::Error { code, .. }) if code == protocol::err::PROTOCOL => {
            println!("wirecheck: oversized length rejected with PROTOCOL error");
        }
        other => return Err(format!("oversized answered {other:?}")),
    }

    // 4. And the server is still alive for well-formed clients.
    connect(cli, false)?.health().map_err(|e| format!("health after abuse: {e}"))?;
    println!("wirecheck: server healthy after abuse");
    Ok(())
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("gss-client: {message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&cli) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("gss-client: {message}");
            ExitCode::FAILURE
        }
    }
}
