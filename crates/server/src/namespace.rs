//! Multi-tenant namespaces: each tenant name maps to its own [`ShardedGss`] and
//! sketch-file directory, with independent durability and group-commit knobs.
//!
//! Tenants are declared up front in the server configuration but **opened lazily**:
//! the first authenticated request for a tenant builds (first boot) or reopens
//! (restart, via per-shard WAL recovery) its sharded sketch under
//! `<data_dir>/<name>/<name>.gss.shard*`.  Placing the tenant's *name* in every
//! file name is deliberate — the deterministic fault injector scopes plans by path
//! token (`path=<name>` in `GSS_FAULT_PLAN`), so one tenant's storage can be failed
//! while its neighbours stay healthy, and the isolation tests do exactly that.
//!
//! The registry map is guarded by the `NamespaceRegistry` witness lock class, which
//! sits **above** every sketch-internal class: resolving a tenant (and opening its
//! store, which takes shard/WAL locks) happens while the registry lock is held, and
//! nothing inside a sketch ever calls back up into the registry.

use crate::net;
use crate::protocol::{err, WireEdge, WireStats, DURABILITY_BUFFERED, DURABILITY_STRICT};
use crate::rate_limit::TokenBucket;
use gss_core::pager::witness::{self, LockClass};
use gss_core::{Durability, FileStore, GroupCommit, GssBuilder, GssError, ShardedGss};
use gss_graph::StreamEdge;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A typed service failure: the wire error code plus a human-readable message.
/// Codes below `0x0100` are server codes ([`err`]); `0x0100` and up pass
/// [`GssError::wire_code`] through unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    pub code: u16,
    pub message: String,
}

impl ServiceError {
    pub fn new(code: u16, message: impl Into<String>) -> Self {
        Self { code, message: message.into() }
    }
}

impl From<GssError> for ServiceError {
    fn from(e: GssError) -> Self {
        Self { code: e.wire_code(), message: e.to_string() }
    }
}

/// Per-tenant configuration, parsed from the server's config file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Shared-secret token presented in HELLO.
    pub token: String,
    /// Ack semantics of this tenant's ingest (see the README guarantee table).
    pub durability: Durability,
    /// Group-commit cadence for `durability = strict`.
    pub group_commit: GroupCommit,
    /// Writer shards of the tenant's store.
    pub shards: usize,
    /// Sketch matrix width per shard.
    pub width: usize,
    /// Token-bucket burst capacity; `rate_per_sec == 0` disables limiting.
    pub rate_capacity: u64,
    /// Sustained tokens per second (1 per query, 1 per ingested item).
    pub rate_per_sec: u64,
}

impl Default for TenantSpec {
    fn default() -> Self {
        Self {
            token: String::new(),
            durability: Durability::Strict,
            group_commit: GroupCommit::default(),
            shards: 2,
            width: 256,
            rate_capacity: 0,
            rate_per_sec: 0,
        }
    }
}

/// Tenant names become directory and file names, so they are restricted to a safe
/// alphabet — no separators, no dots, nothing a path could interpret.
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-' || b == b'_')
}

/// The server configuration: where tenant data lives and which tenants exist.
///
/// The config file is a line-based format, one tenant per line:
///
/// ```text
/// # comment
/// tenant alpha token=alpha-secret durability=strict shards=2 width=256 rate=0 burst=0
/// tenant beta  token=beta-secret  durability=buffered
/// ```
///
/// Unspecified keys take [`TenantSpec::default`]; `rate` is sustained tokens per
/// second (0 = unlimited) and `burst` the bucket capacity (defaults to `rate`).
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    pub tenants: HashMap<String, TenantSpec>,
}

impl ServerConfig {
    /// Parses the config text.  Errors name the offending line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut tenants = HashMap::new();
        for (number, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut words = line.split_whitespace();
            match words.next() {
                Some("tenant") => {}
                Some(other) => {
                    return Err(format!("line {}: unknown directive `{other}`", number + 1))
                }
                None => continue,
            }
            let name = words
                .next()
                .ok_or_else(|| format!("line {}: tenant needs a name", number + 1))?
                .to_string();
            if !valid_tenant_name(&name) {
                return Err(format!(
                    "line {}: tenant name `{name}` must be 1-64 chars of [a-z0-9_-]",
                    number + 1
                ));
            }
            let mut spec = TenantSpec::default();
            let mut burst: Option<u64> = None;
            for word in words {
                let (key, value) = word.split_once('=').ok_or_else(|| {
                    format!("line {}: expected key=value, got `{word}`", number + 1)
                })?;
                let bad = |what: &str| format!("line {}: bad {what} `{value}`", number + 1);
                match key {
                    "token" => spec.token = value.to_string(),
                    "durability" => {
                        spec.durability = match value {
                            "strict" => Durability::Strict,
                            "buffered" => Durability::Buffered,
                            _ => return Err(bad("durability")),
                        }
                    }
                    "shards" => {
                        spec.shards = value.parse().map_err(|_| bad("shards"))?;
                        if spec.shards == 0 {
                            return Err(bad("shards"));
                        }
                    }
                    "width" => spec.width = value.parse().map_err(|_| bad("width"))?,
                    "rate" => spec.rate_per_sec = value.parse().map_err(|_| bad("rate"))?,
                    "burst" => burst = Some(value.parse().map_err(|_| bad("burst"))?),
                    "group_delay_us" => {
                        spec.group_commit.max_delay_us =
                            value.parse().map_err(|_| bad("group_delay_us"))?
                    }
                    "group_bytes" => {
                        spec.group_commit.max_bytes =
                            value.parse().map_err(|_| bad("group_bytes"))?
                    }
                    _ => return Err(format!("line {}: unknown key `{key}`", number + 1)),
                }
            }
            if spec.token.is_empty() {
                return Err(format!("line {}: tenant `{name}` has no token", number + 1));
            }
            spec.rate_capacity = burst.unwrap_or(spec.rate_per_sec);
            if tenants.insert(name.clone(), spec).is_some() {
                return Err(format!("line {}: tenant `{name}` declared twice", number + 1));
            }
        }
        Ok(Self { tenants })
    }
}

/// One opened tenant: its sharded store, rate limiter and ingest clock.
pub struct Namespace {
    pub name: String,
    store: ShardedGss,
    durability: Durability,
    bucket: Mutex<TokenBucket>,
    /// Server-assigned stream timestamps, monotone per tenant in arrival order.
    clock: AtomicU64,
    /// Items this namespace has accepted over the wire since it was opened.
    accepted: AtomicU64,
}

impl std::fmt::Debug for Namespace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Namespace")
            .field("name", &self.name)
            .field("durability", &self.durability)
            .finish_non_exhaustive()
    }
}

impl Namespace {
    /// Drains `cost` rate-limit tokens; `false` means the caller must answer
    /// `RATE_LIMITED`.
    pub fn admit(&self, cost: u64) -> bool {
        self.bucket.lock().try_take(cost, Instant::now())
    }

    /// Whether the tenant's backing store has fail-stopped.
    pub fn is_poisoned(&self) -> bool {
        self.store.is_poisoned()
    }

    /// Batch-ingests wire items, assigning timestamps in arrival order, and returns
    /// `(accepted, acked_total)` for the INGESTED response.
    pub fn ingest(&self, items: &[WireEdge]) -> Result<(u64, u64), ServiceError> {
        // relaxed: the clock only needs per-tenant uniqueness and monotonicity of
        // the values it hands out; fetch_add provides both under any ordering.
        let first = self.clock.fetch_add(items.len() as u64, Ordering::Relaxed);
        let batch: Vec<StreamEdge> = items
            .iter()
            .enumerate()
            .map(|(offset, item)| {
                StreamEdge::new(item.source, item.destination, first + offset as u64, item.weight)
            })
            .collect();
        self.store.try_insert_batch(&batch)?;
        // relaxed: pure statistics counter, no memory is published under it.
        let total =
            self.accepted.fetch_add(items.len() as u64, Ordering::Relaxed) + items.len() as u64;
        Ok((items.len() as u64, total))
    }

    /// The durability byte for INGESTED responses.
    pub fn durability_byte(&self) -> u8 {
        match self.durability {
            Durability::Strict => DURABILITY_STRICT,
            Durability::Buffered => DURABILITY_BUFFERED,
        }
    }

    pub fn edge_weight(&self, source: u64, destination: u64) -> Option<i64> {
        self.store.edge_weight(source, destination)
    }

    pub fn successors(&self, vertex: u64) -> Vec<u64> {
        self.store.successors(vertex)
    }

    pub fn precursors(&self, vertex: u64) -> Vec<u64> {
        self.store.precursors(vertex)
    }

    pub fn reachable(&self, source: u64, destination: u64, max_hops: u32) -> bool {
        if max_hops == 0 {
            gss_graph::algorithms::is_reachable(&self.store, source, destination)
        } else {
            gss_graph::algorithms::is_reachable_bounded(
                &self.store,
                source,
                destination,
                max_hops as usize,
            )
        }
    }

    /// Checkpoints every shard to disk.
    pub fn snapshot(&self) -> Result<(), ServiceError> {
        self.store
            .sync()
            .map_err(|e| ServiceError::new(err::SNAPSHOT_FAILED, format!("snapshot failed: {e}")))
    }

    /// Tenant statistics plus the honest durability account.
    pub fn stats(&self) -> WireStats {
        let detailed = self.store.detailed_stats();
        let report = self.store.durability_report();
        WireStats {
            items_inserted: detailed.items_inserted,
            matrix_edges: detailed.matrix_edges as u64,
            buffered_edges: detailed.buffered_edges as u64,
            shards: self.store.shard_count() as u32,
            poisoned: report.poisoned,
            acked_items: report.acked_items,
            durable_items: report.durable_items,
            breached_items: report.breached_items,
        }
    }
}

/// The tenant registry: declared specs plus the lazily-opened namespaces.
pub struct NamespaceRegistry {
    data_dir: PathBuf,
    specs: HashMap<String, TenantSpec>,
    open: RwLock<HashMap<String, Arc<Namespace>>>,
}

impl NamespaceRegistry {
    pub fn new(data_dir: PathBuf, config: ServerConfig) -> Self {
        Self { data_dir, specs: config.tenants, open: RwLock::new(HashMap::new()) }
    }

    /// Number of namespaces opened so far (HEALTH).
    pub fn open_count(&self) -> usize {
        let _registry_held = witness::acquire(LockClass::NamespaceRegistry);
        self.open.read().len()
    }

    /// Authenticates and resolves a tenant, opening its store on first use.
    ///
    /// Witness order: the registry lock is taken first, and opening the store takes
    /// shard/WAL/pager locks *under* it — the `NamespaceRegistry → Shard` edge, the
    /// only direction the witness permits for this class.
    pub fn resolve(&self, tenant: &str, token: &str) -> Result<Arc<Namespace>, ServiceError> {
        let spec = self.specs.get(tenant).ok_or_else(|| {
            ServiceError::new(err::UNKNOWN_TENANT, format!("no tenant `{tenant}`"))
        })?;
        if !crate::auth::token_matches(token, &spec.token) {
            return Err(ServiceError::new(err::AUTH_FAILED, "token mismatch"));
        }
        {
            let _registry_held = witness::acquire(LockClass::NamespaceRegistry);
            if let Some(namespace) = self.open.read().get(tenant) {
                return Ok(Arc::clone(namespace));
            }
        }
        let _registry_held = witness::acquire(LockClass::NamespaceRegistry);
        let mut open = self.open.write();
        // Double-checked under the write lock: another connection may have opened
        // the tenant while we dropped the read lock.
        if let Some(namespace) = open.get(tenant) {
            return Ok(Arc::clone(namespace));
        }
        let namespace = Arc::new(self.open_namespace(tenant, spec)?);
        open.insert(tenant.to_string(), Arc::clone(&namespace));
        Ok(namespace)
    }

    /// Builds (first boot) or reopens (restart) a tenant's store under
    /// `<data_dir>/<tenant>/<tenant>.gss.shard*`.
    fn open_namespace(&self, tenant: &str, spec: &TenantSpec) -> Result<Namespace, ServiceError> {
        let unavailable = |message: String| ServiceError::new(err::TENANT_UNAVAILABLE, message);
        let dir = self.data_dir.join(tenant);
        net::ensure_dir(&dir)
            .map_err(|e| unavailable(format!("cannot create tenant directory: {e}")))?;
        let base = dir.join(format!("{tenant}.gss"));
        let shard0 = dir.join(format!("{tenant}.gss.shard0"));
        let store = if net::path_exists(&shard0) {
            ShardedGss::open_sharded(
                &base,
                spec.shards,
                FileStore::DEFAULT_CACHE_PAGES,
                spec.durability,
                spec.group_commit,
            )
            .map_err(|e| unavailable(format!("cannot reopen tenant store: {e}")))?
        } else {
            GssBuilder::new()
                .width(spec.width)
                .track_node_ids(true)
                .storage_dir(&dir, tenant)
                .durability(spec.durability)
                .group_commit(spec.group_commit)
                .build_sharded(spec.shards)
                .map_err(|e| unavailable(format!("cannot create tenant store: {e}")))?
        };
        // Resume the ingest clock past anything already persisted so restarted
        // servers never reuse timestamps.
        let clock = store.detailed_stats().items_inserted;
        Ok(Namespace {
            name: tenant.to_string(),
            store,
            durability: spec.durability,
            bucket: Mutex::new(TokenBucket::new(
                spec.rate_capacity,
                spec.rate_per_sec,
                Instant::now(),
            )),
            clock: AtomicU64::new(clock),
            accepted: AtomicU64::new(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_parses_tenants_with_defaults_and_overrides() {
        let text = "\n# fleet\ntenant alpha token=a-secret durability=strict shards=2 rate=100\n\
                    tenant beta token=b-secret durability=buffered width=128 burst=7\n";
        let config = ServerConfig::parse(text).unwrap();
        let alpha = &config.tenants["alpha"];
        assert_eq!(alpha.durability, Durability::Strict);
        assert_eq!(alpha.shards, 2);
        assert_eq!(alpha.rate_per_sec, 100);
        assert_eq!(alpha.rate_capacity, 100, "burst defaults to rate");
        let beta = &config.tenants["beta"];
        assert_eq!(beta.durability, Durability::Buffered);
        assert_eq!(beta.width, 128);
        assert_eq!(beta.rate_capacity, 7);
        assert_eq!(beta.rate_per_sec, 0);
    }

    #[test]
    fn config_rejects_damage_with_line_numbers() {
        for (text, needle) in [
            ("tenant", "needs a name"),
            ("tenant Bad/name token=x", "must be 1-64 chars"),
            ("tenant a token=x durability=eventual", "bad durability"),
            ("tenant a token=x shards=0", "bad shards"),
            ("tenant a", "has no token"),
            ("tenant a token=x\ntenant a token=y", "declared twice"),
            ("server a", "unknown directive"),
            ("tenant a token=x nonsense", "expected key=value"),
        ] {
            let error = ServerConfig::parse(text).unwrap_err();
            assert!(error.contains(needle), "{text:?} -> {error}");
        }
    }

    #[test]
    fn tenant_names_that_could_escape_the_data_dir_are_invalid() {
        for bad in ["", "..", "a/b", "a\\b", "a.b", "UPPER", "x y", &"n".repeat(65)] {
            assert!(!valid_tenant_name(bad), "{bad:?} should be rejected");
        }
        assert!(valid_tenant_name("alpha-2_test"));
    }

    #[test]
    fn resolve_authenticates_then_lazily_opens_and_caches() {
        let dir = std::env::temp_dir().join(format!("gss-ns-{}", std::process::id()));
        let config = ServerConfig::parse("tenant alpha token=right shards=1 width=64").unwrap();
        let registry = NamespaceRegistry::new(dir.clone(), config);

        let missing = registry.resolve("ghost", "right").unwrap_err();
        assert_eq!(missing.code, err::UNKNOWN_TENANT);
        let denied = registry.resolve("alpha", "wrong").unwrap_err();
        assert_eq!(denied.code, err::AUTH_FAILED);
        assert_eq!(registry.open_count(), 0, "failed auth must not open a store");

        let namespace = registry.resolve("alpha", "right").unwrap();
        assert_eq!(registry.open_count(), 1);
        let (accepted, total) =
            namespace.ingest(&[WireEdge { source: 1, destination: 2, weight: 3 }]).unwrap();
        assert_eq!((accepted, total), (1, 1));
        assert_eq!(namespace.edge_weight(1, 2), Some(3));

        let again = registry.resolve("alpha", "right").unwrap();
        assert!(Arc::ptr_eq(&namespace, &again), "second resolve reuses the open store");

        drop((namespace, again, registry));
        std::fs::remove_dir_all(&dir).ok();
    }
}
