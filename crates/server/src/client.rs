//! The client half of the protocol: a typed, synchronous handle used by the
//! examples, the integration tests and the `gss-client` binary the CI smoke job
//! drives.

use crate::net::{FrameConn, FrameError};
use crate::protocol::{self, ProtocolError, Request, Response, WireEdge, WireStats};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// How a client call can fail.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, write, or server closed).
    Io(io::Error),
    /// The server's bytes did not form a valid frame.
    Protocol(ProtocolError),
    /// The server answered with a typed error response.
    Server { code: u16, message: String },
    /// The server answered with a well-formed response of the wrong kind.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport: {e}"),
            Self::Protocol(e) => write!(f, "protocol: {e}"),
            Self::Server { code, message } => write!(f, "server error {code:#06x}: {message}"),
            Self::Unexpected(what) => write!(f, "unexpected response kind (wanted {what})"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        Self::Protocol(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => Self::Io(e),
            FrameError::Protocol(e) => Self::Protocol(e),
        }
    }
}

/// The acknowledgement of a batch ingest.  What `acked` *means* depends on the
/// tenant's durability mode — see the README's guarantee table for the row-by-row
/// contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestAck {
    /// Items accepted from this batch.
    pub accepted: u64,
    /// Items this tenant has accepted since its store was opened.
    pub acked_total: u64,
    /// [`protocol::DURABILITY_STRICT`] or [`protocol::DURABILITY_BUFFERED`].
    pub durability: u8,
}

/// A synchronous connection to a `gss-server`.
pub struct GssClient {
    conn: FrameConn,
}

impl GssClient {
    /// Connects.  Port 0 is never valid here — pass the resolved server address.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let conn = FrameConn::new(stream)?;
        conn.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Self { conn })
    }

    /// One request/response exchange; a typed server error becomes `Err(Server)`.
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.conn.write_frame(&protocol::encode_request(request))?;
        let (kind, payload) = self.conn.read_frame()?;
        match protocol::decode_response(kind, &payload)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            response => Ok(response),
        }
    }

    /// Binds this connection to a tenant.
    pub fn hello(&mut self, tenant: &str, token: &str) -> Result<(), ClientError> {
        match self.call(&Request::Hello { tenant: tenant.into(), token: token.into() })? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("OK")),
        }
    }

    /// Batch-ingests `(source, destination, weight)` items.
    pub fn ingest(&mut self, items: &[(u64, u64, i64)]) -> Result<IngestAck, ClientError> {
        let items = items
            .iter()
            .map(|&(source, destination, weight)| WireEdge { source, destination, weight })
            .collect();
        match self.call(&Request::Ingest { items })? {
            Response::Ingested { accepted, acked_total, durability } => {
                Ok(IngestAck { accepted, acked_total, durability })
            }
            _ => Err(ClientError::Unexpected("INGESTED")),
        }
    }

    /// Queries an edge's aggregated weight.
    pub fn edge(&mut self, source: u64, destination: u64) -> Result<Option<i64>, ClientError> {
        match self.call(&Request::Edge { source, destination })? {
            Response::EdgeWeight(weight) => Ok(weight),
            _ => Err(ClientError::Unexpected("EDGE_WEIGHT")),
        }
    }

    /// 1-hop successor query.
    pub fn successors(&mut self, vertex: u64) -> Result<Vec<u64>, ClientError> {
        match self.call(&Request::Successors { vertex })? {
            Response::Vertices(vertices) => Ok(vertices),
            _ => Err(ClientError::Unexpected("VERTICES")),
        }
    }

    /// 1-hop precursor query.
    pub fn precursors(&mut self, vertex: u64) -> Result<Vec<u64>, ClientError> {
        match self.call(&Request::Precursors { vertex })? {
            Response::Vertices(vertices) => Ok(vertices),
            _ => Err(ClientError::Unexpected("VERTICES")),
        }
    }

    /// Reachability query; `max_hops == 0` means unbounded.
    pub fn reachable(
        &mut self,
        source: u64,
        destination: u64,
        max_hops: u32,
    ) -> Result<bool, ClientError> {
        match self.call(&Request::Reachable { source, destination, max_hops })? {
            Response::Bool(answer) => Ok(answer),
            _ => Err(ClientError::Unexpected("BOOL")),
        }
    }

    /// Checkpoints the bound tenant's shards to disk.
    pub fn snapshot(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Snapshot)? {
            Response::Ok => Ok(()),
            _ => Err(ClientError::Unexpected("OK")),
        }
    }

    /// The bound tenant's statistics and durability account.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            _ => Err(ClientError::Unexpected("STATS")),
        }
    }

    /// Server liveness: `(open namespaces, active connections)`.  Needs no HELLO.
    pub fn health(&mut self) -> Result<(u32, u32), ClientError> {
        match self.call(&Request::Health)? {
            Response::Health { namespaces, connections } => Ok((namespaces, connections)),
            _ => Err(ClientError::Unexpected("HEALTH")),
        }
    }

    /// Sends raw bytes and reads one frame back — the byte-level conformance hook
    /// `gss-client wirecheck` uses.  Not part of the normal API surface.
    pub fn raw_exchange(&mut self, bytes: &[u8]) -> Result<(u8, Vec<u8>), ClientError> {
        self.conn.write_raw(bytes)?;
        Ok(self.conn.read_frame()?)
    }
}
