//! Static per-tenant token authentication.
//!
//! Each tenant is configured with one shared-secret token; a connection presents it
//! in its HELLO frame and is bound to that tenant for its lifetime.  The comparison
//! is length-independent and content-independent in running time so the check does
//! not leak token bytes through response timing.

/// Compares a presented token against the configured one without early exit: the
/// loop always walks `max(len)` bytes and folds every difference into one
/// accumulator, so timing reveals neither the match prefix length nor the token
/// length.
pub fn token_matches(presented: &str, expected: &str) -> bool {
    let a = presented.as_bytes();
    let b = expected.as_bytes();
    let len = a.len().max(b.len());
    let mut diff = a.len() ^ b.len();
    for i in 0..len {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= usize::from(x ^ y);
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_only() {
        assert!(token_matches("s3cret", "s3cret"));
        assert!(!token_matches("s3cret", "s3cres"));
        assert!(!token_matches("s3cre", "s3cret"));
        assert!(!token_matches("s3cretX", "s3cret"));
        assert!(!token_matches("", "s3cret"));
        assert!(token_matches("", ""));
    }
}
