//! Per-tenant token-bucket rate limiting.
//!
//! Each namespace owns one bucket; every request drains it — queries cost one
//! token, ingest costs one token **per stream item**, so the limit is an item-rate
//! bound on the expensive path and a request-rate bound on the cheap ones.  An
//! empty bucket yields a typed `RATE_LIMITED` error response (the connection stays
//! open); one throttled tenant never slows another, because buckets are per-tenant
//! state with no shared locks.

use std::time::Instant;

/// A classic token bucket: `capacity` bounds the burst, `refill_per_sec` the
/// sustained rate.  Time is taken from a caller-supplied [`Instant`] so tests drive
/// it deterministically.
#[derive(Debug)]
pub struct TokenBucket {
    capacity: f64,
    refill_per_sec: f64,
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// A full bucket.  A `refill_per_sec` of zero disables rate limiting entirely
    /// (the bucket always grants) — the configuration default, so tenants opt *in*
    /// to throttling.
    pub fn new(capacity: u64, refill_per_sec: u64, now: Instant) -> Self {
        Self {
            capacity: capacity as f64,
            refill_per_sec: refill_per_sec as f64,
            tokens: capacity as f64,
            last_refill: now,
        }
    }

    /// Whether limiting is disabled (zero refill rate).
    pub fn unlimited(&self) -> bool {
        self.refill_per_sec == 0.0
    }

    /// Attempts to take `cost` tokens at time `now`; `false` means rate-limited.
    /// Costs larger than the whole capacity are granted when the bucket is full
    /// (otherwise a single oversized batch could never be admitted at all).
    pub fn try_take(&mut self, cost: u64, now: Instant) -> bool {
        if self.unlimited() {
            return true;
        }
        let elapsed = now.saturating_duration_since(self.last_refill).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        self.last_refill = now;
        let cost = cost as f64;
        if self.tokens >= cost || (cost > self.capacity && self.tokens >= self.capacity) {
            self.tokens = (self.tokens - cost).max(0.0);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn burst_then_throttle_then_refill() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(10, 10, t0);
        assert!(bucket.try_take(10, t0));
        assert!(!bucket.try_take(1, t0));
        // Half a second refills five tokens.
        let t1 = t0 + Duration::from_millis(500);
        assert!(bucket.try_take(5, t1));
        assert!(!bucket.try_take(1, t1));
    }

    #[test]
    fn zero_rate_means_unlimited() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(0, 0, t0);
        assert!(bucket.unlimited());
        assert!(bucket.try_take(u64::MAX, t0));
    }

    #[test]
    fn oversized_batches_are_admitted_only_from_a_full_bucket() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(5, 5, t0);
        assert!(bucket.try_take(100, t0), "full bucket admits an oversized batch");
        assert!(!bucket.try_take(100, t0), "drained bucket does not");
        let t1 = t0 + Duration::from_secs(2);
        assert!(bucket.try_take(100, t1), "refilled-to-capacity bucket admits again");
    }
}
