//! The serving loop: a bounded thread-per-connection TCP accept loop dispatching
//! GSSP frames against the tenant registry.
//!
//! Failure discipline mirrors the core's fail-stop model on the wire: a poisoned
//! tenant store surfaces as a **typed error response** (`0x02xx`, carrying
//! [`gss_core::GssError::wire_code`]) and the connection stays open for queries —
//! it is never a dropped socket.  Only transport death and unrecoverable framing
//! damage close a connection.

use crate::namespace::{NamespaceRegistry, ServerConfig, ServiceError};
use crate::net::{FrameConn, FrameError};
use crate::protocol::{self, err, Request, Response};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Default cap on concurrent connections.
pub const DEFAULT_MAX_CONNECTIONS: usize = 64;
/// A connection that stays silent this long is closed so it cannot pin a
/// connection-cap slot forever.
pub const READ_TIMEOUT: Duration = Duration::from_secs(60);

/// Shared server state: the registry plus the connection accounting.
struct Shared {
    registry: NamespaceRegistry,
    connections: AtomicUsize,
    max_connections: usize,
    shutdown: AtomicBool,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Handle to a server running on a background thread (integration tests); dropping
/// it does **not** stop the server — call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the acceptor thread.  In-flight connection
    /// threads finish their current request and exit on their next read.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.thread.join();
    }
}

impl Server {
    /// Binds the listener and loads the tenant registry.  `addr` may use port 0 to
    /// let the OS pick (tests and the CI smoke job do).
    pub fn bind(
        addr: &str,
        data_dir: PathBuf,
        config: ServerConfig,
        max_connections: usize,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let shared = Arc::new(Shared {
            registry: NamespaceRegistry::new(data_dir, config),
            connections: AtomicUsize::new(0),
            max_connections: max_connections.max(1),
            shutdown: AtomicBool::new(false),
        });
        Ok(Self { listener, shared })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop on the current thread until shutdown is requested.
    pub fn run(self) {
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                // Transient accept errors (EMFILE pressure, aborted handshakes)
                // must not kill the acceptor.
                Err(_) => continue,
            };
            let shared = Arc::clone(&self.shared);
            let previous = shared.connections.fetch_add(1, Ordering::SeqCst);
            if previous >= shared.max_connections {
                shared.connections.fetch_sub(1, Ordering::SeqCst);
                // Best-effort BUSY frame; the client may also just see the close.
                if let Ok(mut conn) = FrameConn::new(stream) {
                    let busy = Response::Error {
                        code: err::BUSY,
                        message: "connection cap reached".to_string(),
                    };
                    let _ = conn.write_frame(&protocol::encode_response(&busy));
                }
                continue;
            }
            thread::spawn(move || {
                let _guard = ConnectionGuard(&shared.connections);
                serve_connection(stream, &shared);
            });
        }
    }

    /// Runs the server on a background thread and returns a handle (tests).
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let thread = thread::spawn(move || self.run());
        Ok(ServerHandle { addr, shared, thread })
    }
}

/// Decrements the live-connection count when a connection thread exits, however it
/// exits.
struct ConnectionGuard<'a>(&'a AtomicUsize);

impl Drop for ConnectionGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One connection's lifetime: frames in, frames out, until EOF, timeout, framing
/// damage or shutdown.
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let Ok(mut conn) = FrameConn::new(stream) else { return };
    let _ = conn.set_read_timeout(Some(READ_TIMEOUT));
    // The tenant this connection is bound to after a successful HELLO.
    let mut bound: Option<Arc<crate::namespace::Namespace>> = None;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let (kind, payload) = match conn.read_frame() {
            Ok(frame) => frame,
            Err(FrameError::Io(_)) => return,
            Err(FrameError::Protocol(damage)) => {
                // Framing damage means the byte stream can no longer be resynced:
                // answer with the typed error, then close.
                let response = Response::Error { code: err::PROTOCOL, message: damage.to_string() };
                let _ = conn.write_frame(&protocol::encode_response(&response));
                return;
            }
        };
        let response = match protocol::decode_request(kind, &payload) {
            // A malformed payload inside a well-framed message leaves the stream
            // intact, so the connection survives.
            Err(damage) => Response::Error { code: err::PROTOCOL, message: damage.to_string() },
            Ok(request) => dispatch(request, &mut bound, shared),
        };
        if conn.write_frame(&protocol::encode_response(&response)).is_err() {
            return;
        }
    }
}

/// Answers one decoded request against the connection's session state.
fn dispatch(
    request: Request,
    bound: &mut Option<Arc<crate::namespace::Namespace>>,
    shared: &Shared,
) -> Response {
    // HEALTH is the only unauthenticated request — load balancers and the CI smoke
    // job probe it before any tenant exists.
    if let Request::Health = request {
        return Response::Health {
            namespaces: shared.registry.open_count() as u32,
            connections: shared.connections.load(Ordering::SeqCst) as u32,
        };
    }
    if let Request::Hello { tenant, token } = &request {
        return match shared.registry.resolve(tenant, token) {
            Ok(namespace) => {
                *bound = Some(namespace);
                Response::Ok
            }
            Err(error) => error_response(error),
        };
    }
    let Some(namespace) = bound.as_ref() else {
        return Response::Error { code: err::AUTH_REQUIRED, message: "HELLO first".to_string() };
    };
    // Rate limiting: one token per request, one per ingested item.
    let cost = match &request {
        Request::Ingest { items } => (items.len() as u64).max(1),
        _ => 1,
    };
    if !namespace.admit(cost) {
        return Response::Error {
            code: err::RATE_LIMITED,
            message: format!("tenant `{}` is over its rate limit", namespace.name),
        };
    }
    match request {
        Request::Hello { .. } | Request::Health => unreachable!("handled above"),
        Request::Ingest { items } => match namespace.ingest(&items) {
            Ok((accepted, acked_total)) => Response::Ingested {
                accepted,
                acked_total,
                durability: namespace.durability_byte(),
            },
            Err(error) => error_response(error),
        },
        Request::Edge { source, destination } => {
            Response::EdgeWeight(namespace.edge_weight(source, destination))
        }
        Request::Successors { vertex } => Response::Vertices(namespace.successors(vertex)),
        Request::Precursors { vertex } => Response::Vertices(namespace.precursors(vertex)),
        Request::Reachable { source, destination, max_hops } => {
            Response::Bool(namespace.reachable(source, destination, max_hops))
        }
        Request::Snapshot => match namespace.snapshot() {
            Ok(()) => Response::Ok,
            Err(error) => error_response(error),
        },
        Request::Stats => Response::Stats(namespace.stats()),
    }
}

fn error_response(error: ServiceError) -> Response {
    Response::Error { code: error.code, message: error.message }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientError, GssClient};

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("gss-server-{tag}-{}", std::process::id()))
    }

    fn boot(tag: &str, config: &str, max_connections: usize) -> (ServerHandle, PathBuf) {
        let dir = temp_dir(tag);
        let config = ServerConfig::parse(config).unwrap();
        let server = Server::bind("127.0.0.1:0", dir.clone(), config, max_connections).unwrap();
        (server.spawn().unwrap(), dir)
    }

    #[test]
    fn hello_ingest_query_snapshot_round_trip() {
        let (handle, dir) = boot("rt", "tenant alpha token=secret shards=2 width=64", 8);
        let mut client = GssClient::connect(handle.addr()).unwrap();

        let health = client.health().unwrap();
        assert_eq!(health.0, 0, "no namespace opened before first HELLO");

        client.hello("alpha", "secret").unwrap();
        let ack = client.ingest(&[(1, 2, 3), (2, 3, 4), (1, 3, 9)]).unwrap();
        assert_eq!(ack.accepted, 3);
        assert_eq!(ack.acked_total, 3);

        assert_eq!(client.edge(1, 2).unwrap(), Some(3));
        assert_eq!(client.edge(9, 9).unwrap(), None);
        let mut successors = client.successors(1).unwrap();
        successors.sort_unstable();
        assert_eq!(successors, vec![2, 3]);
        assert!(client.reachable(1, 3, 0).unwrap());
        assert!(!client.reachable(3, 1, 0).unwrap());
        client.snapshot().unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.items_inserted, 3);
        assert!(!stats.poisoned);

        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auth_failures_are_typed_and_do_not_open_stores() {
        let (handle, dir) = boot("auth", "tenant alpha token=secret", 8);
        let mut client = GssClient::connect(handle.addr()).unwrap();

        match client.ingest(&[(1, 2, 3)]) {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, err::AUTH_REQUIRED),
            other => panic!("expected AUTH_REQUIRED, got {other:?}"),
        }
        match client.hello("alpha", "wrong") {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, err::AUTH_FAILED),
            other => panic!("expected AUTH_FAILED, got {other:?}"),
        }
        match client.hello("ghost", "secret") {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, err::UNKNOWN_TENANT),
            other => panic!("expected UNKNOWN_TENANT, got {other:?}"),
        }
        let health = client.health().unwrap();
        assert_eq!(health.0, 0, "failed auth must not open a namespace");

        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn connection_cap_answers_busy() {
        let (handle, dir) = boot("cap", "tenant alpha token=secret", 1);
        let mut first = GssClient::connect(handle.addr()).unwrap();
        first.health().unwrap(); // the first connection is established and counted
        let mut second = GssClient::connect(handle.addr()).unwrap();
        match second.health() {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, err::BUSY),
            // The server may close before the BUSY frame flushes; both are in-cap.
            Err(ClientError::Io(_)) => {}
            other => panic!("expected BUSY or close, got {other:?}"),
        }
        drop(second);
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rate_limited_tenant_gets_a_typed_error() {
        let (handle, dir) = boot("rate", "tenant alpha token=secret rate=5 burst=5", 8);
        let mut client = GssClient::connect(handle.addr()).unwrap();
        client.hello("alpha", "secret").unwrap();
        client.ingest(&[(1, 2, 1), (2, 3, 1), (3, 4, 1), (4, 5, 1), (5, 6, 1)]).unwrap();
        match client.ingest(&[(6, 7, 1)]) {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, err::RATE_LIMITED),
            other => panic!("expected RATE_LIMITED, got {other:?}"),
        }
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
