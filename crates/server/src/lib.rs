//! `gss-server`: a networked, multi-tenant ingest/query service over GSS sketches.
//!
//! The crate is std-only — no HTTP stack, no async runtime.  Clients speak a
//! hand-rolled length-prefixed binary protocol ([`protocol`]) whose frames carry a
//! versioned, CRC-sealed header in the style of the core's write-ahead-log frame
//! format, over plain TCP with one thread per connection ([`server`], bounded by a
//! connection cap).
//!
//! Tenancy ([`namespace`]): each tenant name maps to its own [`gss_core::ShardedGss`]
//! and sketch-file directory with independent durability/group-commit knobs, opened
//! lazily on first authenticated use and guarded by the existing single-opener
//! lock.  Static per-tenant tokens ([`auth`]) and a token-bucket rate limiter
//! ([`rate_limit`]) keep tenants from reading — or starving — each other.
//!
//! Failure discipline: a poisoned store (`GssError::StoreFailed`) surfaces as a
//! typed `0x02xx` error response carrying [`gss_core::GssError::wire_code`]; the
//! connection stays open and queries keep serving.  All raw I/O — sockets and the
//! few file touches — is contained in [`net`], the crate's single L004-exempt
//! module.
//!
//! The client half ([`client`]) is shipped in the same crate and used by the
//! examples, the integration tests and the CI smoke job (`ci/server_smoke.sh`).

pub mod auth;
pub mod client;
pub mod namespace;
pub mod net;
pub mod protocol;
pub mod rate_limit;
pub mod server;

pub use client::{ClientError, GssClient, IngestAck};
pub use namespace::{Namespace, NamespaceRegistry, ServerConfig, ServiceError, TenantSpec};
pub use net::{FrameConn, FrameError};
pub use protocol::{ProtocolError, Request, Response, WireEdge, WireStats};
pub use server::{Server, ServerHandle, DEFAULT_MAX_CONNECTIONS};
