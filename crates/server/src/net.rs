//! All raw I/O of the server crate lives here: socket framing plus the handful of
//! file-system touches the serving layer needs (config loading, tenant directory
//! creation, existence probes).
//!
//! This is the server-side analogue of `gss-core`'s storage-layer containment rule
//! (gss-lint L004): every other module in this crate is pure — `protocol` never sees
//! a byte source, `namespace`/`server`/`client` route every file or socket operation
//! through this module — so the fault surface reviewers must audit for partial reads,
//! interrupted writes and resource leaks is one file.  The module is accordingly on
//! the lint's L004 allowlist; nothing outside it may name `std::fs` or `OpenOptions`.

use crate::protocol::{self, ProtocolError, HEADER_BYTES};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

/// How a frame read can fail: transport death and protocol damage are distinct —
/// the server drops the connection on the former and answers a typed error frame on
/// the latter.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed or closed.
    Io(io::Error),
    /// The bytes arrived but do not form a valid frame.
    Protocol(ProtocolError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<ProtocolError> for FrameError {
    fn from(e: ProtocolError) -> Self {
        Self::Protocol(e)
    }
}

/// A framed connection: one TCP stream carrying GSSP frames in both directions.
pub struct FrameConn {
    stream: TcpStream,
}

impl FrameConn {
    /// Wraps an accepted or connected stream.  `TCP_NODELAY` is set because the
    /// protocol is request/response — Nagle would add a round-trip of latency to
    /// every small query frame for no batching benefit.
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Bounds how long a blocking read may stall (used by the server so a silent
    /// client cannot pin a connection-cap slot forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Reads exactly one frame and returns `(kind, payload)`.
    ///
    /// The header is read and validated *before* the payload is, so a lying length
    /// field is rejected without allocating; `Ok` means magic, version, length bound
    /// and CRC all checked out.  An EOF cleanly between frames surfaces as
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn read_frame(&mut self) -> Result<(u8, Vec<u8>), FrameError> {
        let mut header = [0u8; HEADER_BYTES];
        self.stream.read_exact(&mut header)?;
        let (kind, len) = protocol::decode_header(&header)?;
        let mut payload = vec![0u8; len];
        self.stream.read_exact(&mut payload)?;
        protocol::check_crc(&header, &payload)?;
        Ok((kind, payload))
    }

    /// Writes one already-encoded frame (from `protocol::encode_request` /
    /// `encode_response`) and flushes it.
    pub fn write_frame(&mut self, frame: &[u8]) -> io::Result<()> {
        self.stream.write_all(frame)?;
        self.stream.flush()
    }

    /// Writes raw bytes without any framing — the `wirecheck` path of the client
    /// binary uses this to assert byte-level behaviour against a live server.
    pub fn write_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Half-closes the write side so the peer sees EOF after our final frame.
    pub fn shutdown_write(&self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }
}

/// Reads a whole file as UTF-8 (server config loading).
pub fn read_file_string(path: &Path) -> io::Result<String> {
    std::fs::read_to_string(path)
}

/// Creates a directory and its parents if missing (tenant data directories).
pub fn ensure_dir(path: &Path) -> io::Result<()> {
    std::fs::create_dir_all(path)
}

/// Whether a path exists on disk — the namespace registry probes for a tenant's
/// shard-0 file to choose between first-boot create and restart reopen.
pub fn path_exists(path: &Path) -> bool {
    path.exists()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{encode_request, Request};
    use std::net::TcpListener;

    #[test]
    fn frames_cross_a_real_socket_intact() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut conn = FrameConn::new(stream).unwrap();
            let (kind, payload) = conn.read_frame().unwrap();
            conn.write_frame(&protocol::encode_frame(kind, &payload)).unwrap();
        });
        let mut conn = FrameConn::new(TcpStream::connect(addr).unwrap()).unwrap();
        let frame = encode_request(&Request::Hello { tenant: "a".into(), token: "t".into() });
        conn.write_frame(&frame).unwrap();
        let (kind, payload) = conn.read_frame().unwrap();
        assert_eq!(protocol::encode_frame(kind, &payload), frame);
        echo.join().unwrap();
    }

    #[test]
    fn garbage_on_the_wire_is_a_protocol_error_not_a_hang() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut conn = FrameConn::new(stream).unwrap();
            conn.write_raw(b"HTTP/1.1 GET / please").unwrap();
        });
        let mut conn = FrameConn::new(TcpStream::connect(addr).unwrap()).unwrap();
        match conn.read_frame() {
            Err(FrameError::Protocol(ProtocolError::BadMagic)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
        sender.join().unwrap();
    }
}
