//! Network-traffic monitoring (use case 1 of the paper's introduction).
//!
//! A stream of `(source IP, destination IP, bytes)` flow records is summarised by GSS.  The
//! example then answers the questions a security analyst would ask:
//!
//! * which hosts did a suspected scanner talk to? (1-hop successor query)
//! * who contacted the database server? (1-hop precursor query)
//! * how much traffic flowed on a specific link? (edge query)
//! * can a compromised workstation reach the payment system at all? (reachability)
//!
//! IP addresses are interned to dense vertex ids with [`StringInterner`], mirroring the
//! `⟨H(v), v⟩` table the paper keeps next to the sketch.
//!
//! Run with: `cargo run --example network_monitoring`

use gss::datasets::Xoshiro256;
use gss::graph::algorithms::is_reachable;
use gss::prelude::*;

fn ip(subnet: u8, host: u64) -> String {
    format!("10.{subnet}.{}.{}", host / 256, host % 256)
}

fn main() {
    let mut interner = StringInterner::new();
    let mut sketch = GssSketch::new(GssConfig::paper_default(512)).expect("valid configuration");
    let mut rng = Xoshiro256::seed_from_u64(0x05EC_011D);

    // Simulate a day of flow records: 200 workstations talk to 20 servers, a scanner probes
    // everything, and the payment system only accepts traffic from the API gateway.
    let scanner = interner.intern("10.9.9.9");
    let gateway = interner.intern("10.1.0.1");
    let payment = interner.intern("10.2.0.2");
    let database = interner.intern("10.2.0.3");

    let workstations: Vec<VertexId> = (0..200).map(|h| interner.intern(&ip(3, h))).collect();
    let servers: Vec<VertexId> = (0..20).map(|h| interner.intern(&ip(1, h + 10))).collect();

    let mut flows = 0u64;
    for _ in 0..50_000 {
        let source = workstations[rng.next_index(workstations.len())];
        let destination = servers[rng.next_index(servers.len())];
        let bytes = 64 + rng.next_below(1500) as i64;
        sketch.insert(source, destination, bytes);
        flows += 1;
    }
    // Server tier talks to the database; the gateway talks to the payment system.
    for &server in &servers {
        sketch.insert(server, database, 4096);
        sketch.insert(server, gateway, 512);
        flows += 2;
    }
    sketch.insert(gateway, payment, 2048);
    flows += 1;
    // The scanner probes every workstation with tiny packets.
    for &workstation in &workstations {
        sketch.insert(scanner, workstation, 40);
        flows += 1;
    }

    println!("== network monitoring: {flows} flow records summarised ==\n");

    // 1. Fan-out of the suspected scanner.
    let scanned = sketch.successors(scanner);
    println!(
        "scanner {} contacted {} distinct hosts (sample: {:?})",
        interner.resolve(scanner).unwrap(),
        scanned.len(),
        interner.resolve_all(&scanned[..scanned.len().min(5)])
    );

    // 2. Who talks to the database server?
    let db_clients = sketch.precursors(database);
    println!(
        "database {} receives traffic from {} hosts",
        interner.resolve(database).unwrap(),
        db_clients.len()
    );

    // 3. Traffic volume on a specific link.
    let link = (servers[0], database);
    println!(
        "traffic {} -> {}: {:?} bytes",
        interner.resolve(link.0).unwrap(),
        interner.resolve(link.1).unwrap(),
        sketch.edge_weight(link.0, link.1)
    );

    // 4. Can a workstation reach the payment system? (only via servers -> gateway -> payment)
    let workstation = workstations[0];
    println!(
        "can {} reach the payment system? {}",
        interner.resolve(workstation).unwrap(),
        is_reachable(&sketch, workstation, payment)
    );
    println!(
        "can the scanner reach the payment system? {}",
        is_reachable(&sketch, scanner, payment)
    );

    let stats = sketch.detailed_stats();
    println!(
        "\nsketch memory: {} KiB (matrix) + {} B (buffer), buffer percentage {:.4}%",
        stats.matrix_bytes / 1024,
        stats.buffer_bytes,
        stats.buffer_percentage * 100.0
    );
}
