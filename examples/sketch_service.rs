//! A multi-tenant sketch service, end to end in one process.
//!
//! Boots a `gss-server` on a random port with two tenants — a strictly-durable
//! `payments` namespace and a throughput-leaning `telemetry` namespace — then
//! drives both through `GssClient` over real TCP: batch ingest, edge / successor /
//! reachability queries, a snapshot, and the per-tenant statistics with their
//! honest durability account.
//!
//! Run with: `cargo run --example sketch_service`

use gss_server::{GssClient, Server, ServerConfig};

fn main() {
    let data_dir = std::env::temp_dir().join(format!("gss-service-demo-{}", std::process::id()));
    std::fs::remove_dir_all(&data_dir).ok();

    // Two tenants with independent durability knobs; `payments` is also rate-limited.
    let config = ServerConfig::parse(
        "tenant payments  token=pay-secret durability=strict   shards=2 width=128 rate=100000\n\
         tenant telemetry token=tel-secret durability=buffered shards=2 width=128",
    )
    .expect("valid tenant configuration");
    let server =
        Server::bind("127.0.0.1:0", data_dir.clone(), config, 16).expect("bind a loopback port");
    let handle = server.spawn().expect("spawn the accept loop");
    println!("serving on {}", handle.addr());

    // The payments tenant: a chain of transfers, strictly durable.
    let mut payments = GssClient::connect(handle.addr()).expect("connect");
    payments.hello("payments", "pay-secret").expect("authenticate");
    let transfers: Vec<(u64, u64, i64)> =
        (1..=500).map(|account| (account, account + 1, 100 * account as i64)).collect();
    let ack = payments.ingest(&transfers).expect("ingest transfers");
    println!(
        "payments: ingested {} transfers (ack durability mode {})",
        ack.accepted, ack.durability
    );
    println!(
        "payments: account 41 -> 42 moved {:?}, 42 reachable from 1: {}",
        payments.edge(41, 42).expect("edge query"),
        payments.reachable(1, 42, 0).expect("reachability query"),
    );
    payments.snapshot().expect("checkpoint payments to disk");

    // The telemetry tenant: a star of sensor readings, buffered for throughput.
    let mut telemetry = GssClient::connect(handle.addr()).expect("connect");
    telemetry.hello("telemetry", "tel-secret").expect("authenticate");
    let readings: Vec<(u64, u64, i64)> =
        (1..=1000).map(|sensor| (sensor % 50, 10_000 + sensor, 1)).collect();
    telemetry.ingest(&readings).expect("ingest readings");
    let mut fanout = telemetry.successors(7).expect("successor query");
    fanout.sort_unstable();
    println!("telemetry: sensor hub 7 feeds {} sinks", fanout.len());

    // Tenants are invisible to each other: payments edges do not exist in telemetry.
    assert_eq!(telemetry.edge(41, 42).expect("cross-tenant probe"), None);

    for (name, client) in [("payments", &mut payments), ("telemetry", &mut telemetry)] {
        let stats = client.stats().expect("stats");
        println!(
            "{name}: {} items over {} shards, {} matrix edges, poisoned={}, \
             acked={} durable={} breached={}",
            stats.items_inserted,
            stats.shards,
            stats.matrix_edges,
            stats.poisoned,
            stats.acked_items,
            stats.durable_items,
            stats.breached_items,
        );
    }

    drop((payments, telemetry));
    handle.shutdown();
    std::fs::remove_dir_all(&data_dir).ok();
    println!("done");
}
