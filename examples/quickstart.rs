//! Quickstart: summarise a small graph stream and run every query primitive.
//!
//! Reproduces the running example of the paper (the stream of Fig. 1), inserts it into a GSS
//! sketch, and answers edge / successor / precursor / reachability / node queries, comparing
//! each answer against the exact graph.
//!
//! Run with: `cargo run --example quickstart`

use gss::graph::algorithms::{is_reachable, node_out_weight};
use gss::prelude::*;

fn main() {
    // The graph stream of Fig. 1: (source, destination, weight) items, one per timestamp.
    // Vertices: a=1, b=2, c=3, d=4, e=5, f=6, g=7.
    let stream: Vec<(u64, u64, i64)> = vec![
        (1, 2, 1),
        (1, 3, 1),
        (2, 4, 1),
        (1, 3, 1),
        (1, 6, 1),
        (3, 6, 1),
        (1, 5, 1),
        (1, 3, 3),
        (3, 6, 1),
        (4, 1, 1),
        (4, 6, 1),
        (6, 5, 3),
        (1, 7, 1),
        (5, 2, 2),
        (4, 1, 1),
    ];

    // A GSS sketch with the paper's default parameters (16-bit fingerprints, 2 rooms,
    // square hashing with r = k = 16) and an exact graph for comparison.  The stream goes
    // in through the batch-first ingest path, which hashes each endpoint once and folds
    // duplicate keys before probing.
    let mut sketch = GssSketch::builder().width(64).build().expect("valid configuration");
    let mut exact = AdjacencyListGraph::new();
    let items: Vec<StreamEdge> = stream
        .iter()
        .enumerate()
        .map(|(t, &(s, d, w))| StreamEdge::new(s, d, t as u64, w))
        .collect();
    sketch.insert_batch(&items);
    exact.insert_batch(&items);

    println!("== GSS quickstart (stream of Fig. 1, {} items) ==\n", stream.len());

    // Primitive 1: edge queries.
    println!(
        "edge query   a->c : GSS = {:?}, exact = {:?}",
        sketch.edge_weight(1, 3),
        exact.edge_weight(1, 3)
    );
    println!(
        "edge query   d->a : GSS = {:?}, exact = {:?}",
        sketch.edge_weight(4, 1),
        exact.edge_weight(4, 1)
    );
    println!(
        "edge query   c->a : GSS = {:?}, exact = {:?} (absent)",
        sketch.edge_weight(3, 1),
        exact.edge_weight(3, 1)
    );

    // Primitive 2 and 3: 1-hop successor / precursor queries.
    println!("\nsuccessors of a  : GSS = {:?}", sketch.successors(1));
    println!("successors of a  : exact = {:?}", exact.successors(1));
    println!("precursors of f  : GSS = {:?}", sketch.precursors(6));
    println!("precursors of f  : exact = {:?}", exact.precursors(6));

    // Compound queries built on the primitives.
    println!(
        "\nnode query (out-weight of a): GSS = {}, exact = {}",
        node_out_weight(&sketch, 1),
        exact.node_out_weight(1)
    );
    println!(
        "reachability b ~> e         : GSS = {}, exact = {}",
        is_reachable(&sketch, 2, 5),
        exact.is_reachable(2, 5)
    );
    println!(
        "reachability g ~> a         : GSS = {}, exact = {}",
        is_reachable(&sketch, 7, 1),
        exact.is_reachable(7, 1)
    );

    // Structure statistics.
    let stats = sketch.detailed_stats();
    println!(
        "\nsketch: {} items inserted, {} edges in the matrix, {} buffered ({}), {} bytes",
        stats.items_inserted,
        stats.matrix_edges,
        stats.buffered_edges,
        if stats.buffered_edges == 0 { "buffer empty, as expected" } else { "buffer in use" },
        stats.total_bytes()
    );
}
