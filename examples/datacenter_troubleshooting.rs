//! Data-centre troubleshooting over a communication-log stream (use case 3 of the paper's
//! introduction).
//!
//! Each log entry describes a call from a source service instance to a destination instance.
//! The stream is windowed; every window is summarised by its own GSS sketch so an operator
//! can ask, per time window:
//!
//! * did messages from the frontend ever reach the billing service? (traversal query)
//! * what does the call path look like? (reconstruction of the reachable subgraph)
//! * how many calls crossed a specific dependency edge? (edge query)
//!
//! Run with: `cargo run --example datacenter_troubleshooting`

use gss::datasets::Xoshiro256;
use gss::graph::algorithms::{is_reachable, reconstruct_graph, shortest_hop_distance};
use gss::graph::StreamWindows;
use gss::prelude::*;

fn main() {
    let mut interner = StringInterner::new();
    // A three-tier service topology with 60 instances.
    let frontends: Vec<VertexId> =
        (0..20).map(|i| interner.intern(&format!("frontend-{i}"))).collect();
    let backends: Vec<VertexId> =
        (0..30).map(|i| interner.intern(&format!("backend-{i}"))).collect();
    let billing: Vec<VertexId> =
        (0..10).map(|i| interner.intern(&format!("billing-{i}"))).collect();

    // Simulate a communication log: frontends call backends, backends call billing — except
    // during the second window, where the backend → billing link is broken (an incident).
    let mut rng = Xoshiro256::seed_from_u64(0xDC_1D);
    let mut log: Vec<StreamEdge> = Vec::new();
    let window_items = 20_000usize;
    for window in 0..3u64 {
        for i in 0..window_items {
            let timestamp = window * window_items as u64 + i as u64;
            let frontend = frontends[rng.next_index(frontends.len())];
            let backend = backends[rng.next_index(backends.len())];
            log.push(StreamEdge::new(frontend, backend, timestamp, 1));
            // The incident: during window 1 backends cannot reach billing.
            if window != 1 && rng.next_bool(0.4) {
                let bill = billing[rng.next_index(billing.len())];
                log.push(StreamEdge::new(backend, bill, timestamp, 1));
            }
        }
    }

    println!("== data-centre troubleshooting: {} log entries, 3 windows ==\n", log.len());

    let frontend = frontends[0];
    let billing_instance = billing[0];
    for (index, window) in StreamWindows::new(log, window_items * 2).enumerate() {
        let mut sketch =
            GssSketch::new(GssConfig::paper_default(256)).expect("valid configuration");
        for item in &window {
            sketch.insert(item.source, item.destination, item.weight);
        }
        let reachable = is_reachable(&sketch, frontend, billing_instance);
        let hops = shortest_hop_distance(&sketch, frontend, billing_instance, 10_000);
        println!(
            "window {index}: {} items; {} ~> {}: reachable = {reachable}, hops = {hops:?}",
            window.len(),
            interner.resolve(frontend).unwrap(),
            interner.resolve(billing_instance).unwrap(),
        );
        if !reachable {
            // Drill down: reconstruct the subgraph reachable from the frontend and report
            // where the path stops.
            let universe: Vec<VertexId> = (0..interner.len() as VertexId).collect();
            let reconstructed = reconstruct_graph(&sketch, &universe);
            let frontier = sketch.successors(frontend);
            println!(
                "  incident detected: frontend reaches {} services, none of them reach billing \
                 (reconstructed subgraph has {} edges)",
                frontier.len(),
                reconstructed.edge_count()
            );
        } else {
            let direct_calls = sketch
                .successors(frontend)
                .iter()
                .filter_map(|&backend| sketch.edge_weight(frontend, backend))
                .sum::<i64>();
            println!("  healthy: frontend issued {direct_calls} calls to its backends");
        }
    }
}
