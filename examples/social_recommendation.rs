//! Social-network friend recommendation (use case 2 of the paper's introduction).
//!
//! Interactions between users form a weighted streaming graph.  The example summarises a
//! synthetic interaction stream with GSS and then recommends "potential friends": users two
//! hops away with the strongest combined interaction weight, computed purely through the
//! query primitives (successor queries + edge queries).
//!
//! Run with: `cargo run --example social_recommendation`

use gss::datasets::PreferentialAttachmentGenerator;
use gss::prelude::*;
use std::collections::HashMap;

/// Recommends up to `limit` two-hop neighbours of `user`, ranked by the sum of
/// `w(user → friend) + w(friend → candidate)` over all connecting friends.
fn recommend(sketch: &GssSketch, user: VertexId, limit: usize) -> Vec<(VertexId, i64)> {
    let direct: Vec<VertexId> = sketch.successors(user);
    let direct_set: std::collections::HashSet<VertexId> = direct.iter().copied().collect();
    let mut scores: HashMap<VertexId, i64> = HashMap::new();
    for &friend in &direct {
        let user_to_friend = sketch.edge_weight(user, friend).unwrap_or(0);
        for candidate in sketch.successors(friend) {
            if candidate == user || direct_set.contains(&candidate) {
                continue;
            }
            let friend_to_candidate = sketch.edge_weight(friend, candidate).unwrap_or(0);
            *scores.entry(candidate).or_insert(0) += user_to_friend + friend_to_candidate;
        }
    }
    let mut ranked: Vec<(VertexId, i64)> = scores.into_iter().collect();
    ranked.sort_by_key(|&(candidate, score)| (std::cmp::Reverse(score), candidate));
    ranked.truncate(limit);
    ranked
}

fn main() {
    // A power-law interaction stream: 5,000 users, 80,000 weighted interactions.
    let generator = PreferentialAttachmentGenerator::new(5_000, 80_000, 0x50C1A1);
    let interactions = generator.generate();

    let mut sketch = GssSketch::new(GssConfig::paper_default(512)).expect("valid configuration");
    let mut exact = AdjacencyListGraph::new();
    for item in &interactions {
        sketch.insert(item.source, item.destination, item.weight);
        exact.insert(item.source, item.destination, item.weight);
    }

    println!(
        "== social recommendation: {} interactions among {} users ==\n",
        interactions.len(),
        exact.vertex_count()
    );

    // Pick the most active user (largest out-degree in the exact graph) and a median one.
    let vertices = exact.vertices();
    let most_active =
        *vertices.iter().max_by_key(|&&v| exact.out_degree(v)).expect("non-empty graph");
    let median = vertices[vertices.len() / 2];

    for user in [most_active, median] {
        println!(
            "user {user}: {} direct contacts (exact {}), interaction weight {}",
            sketch.successors(user).len(),
            exact.out_degree(user),
            gss::graph::algorithms::node_out_weight(&sketch, user)
        );
        let recommendations = recommend(&sketch, user, 5);
        println!("  top recommendations (two-hop, by combined interaction weight):");
        for (candidate, score) in &recommendations {
            println!("    user {candidate:<6} score {score}");
        }
        // Sanity check against the exact graph: every recommended user really is two hops
        // away (GSS has no false negatives, so true two-hop neighbours are never missed).
        let truly_two_hop = recommendations
            .iter()
            .filter(|(candidate, _)| {
                exact
                    .successors(user)
                    .iter()
                    .any(|&friend| exact.edge_weight(friend, *candidate).is_some())
            })
            .count();
        println!(
            "  verified against exact graph: {truly_two_hop}/{} are true two-hop contacts\n",
            recommendations.len()
        );
    }

    let stats = sketch.detailed_stats();
    println!(
        "sketch stores {} edges in {} KiB; buffer percentage {:.4}%",
        stats.matrix_edges + stats.buffered_edges,
        stats.total_bytes() / 1024,
        stats.buffer_percentage * 100.0
    );
}
