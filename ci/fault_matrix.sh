#!/usr/bin/env bash
# Fault matrix: prove the fail-stop storage contract under randomized I/O fault
# schedules — EIO, ENOSPC, torn writes, failed fsync, and transient EINTR/short I/O.
#
# Each schedule builds a randomized `GSS_FAULT_PLAN` spec, runs `crash_harness
# fault-ingest` with the plan armed, then `fault-verify` with the plan cleared.
# The ingest half checks the poisoned-store contract at the scene of the fault
# (writes rejected, reads still served, coherent DurabilityReport) and records the
# report in a `<progress>.fault` sidecar; the verify half reopens the store and
# holds the report to its word:
#   * no false acks: every durable-claimed item is recovered
#     (`recovered >= durable_items`), and an unpoisoned run recovers everything
#     it acknowledged, and
#   * an unopenable store is acceptable only when the report already confessed
#     (`poisoned` with zero durable items), and
#   * zero panics anywhere: hard faults fail-stop through typed errors, transient
#     faults (EINTR, short reads) are absorbed by bounded retry and the run
#     completes like any healthy ingest.
#
# Usage: ci/fault_matrix.sh [schedules]   (default 30)
set -euo pipefail
cd "$(dirname "$0")/.."

SCHEDULES="${1:-30}"
ITEMS=30000

# release-witness = release + debug-assertions, same profile as the crash matrix:
# the injected-fault runs double as a lock-order-witness integration pass.
cargo build --profile release-witness -p gss-experiments --bin crash_harness
BIN=target/release-witness/crash_harness

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

# Deterministic-but-varied schedules; rerun with SEED=<n> (or the legacy
# FAULT_MATRIX_SEED) to reproduce a failing run exactly.
SEED="${SEED:-${FAULT_MATRIX_SEED:-$RANDOM}}"
echo "fault matrix: $SCHEDULES randomized schedules, seed $SEED"

# Failing schedules park their progress/fault sidecars and ingest log (plus the
# seed) here so CI can upload them as artifacts.
ARTIFACTS="target/matrix-artifacts"
save_artifacts() {
  mkdir -p "$ARTIFACTS"
  echo "$SEED" > "$ARTIFACTS/fault-matrix-seed"
  for f in "$@"; do
    [ -e "$f" ] && cp "$f" "$ARTIFACTS/" || true
  done
}

failures=0
fired=0
hard_stops=0
transient_runs=0
for i in $(seq 1 "$SCHEDULES"); do
  sketch="$WORKDIR/fault-$i.gss"
  progress="$WORKDIR/progress-$i"
  ingest_log="$WORKDIR/ingest-$i.log"
  # Alternate the two single-writer durability contracts.
  if [ $((i % 2)) -eq 0 ]; then durability=buffered; else durability=strict; fi
  # Schedule mix: 40% hard write faults (EIO/ENOSPC/torn), 20% failed fsync,
  # 10% failed truncate, 20% transient-only, 10% transient-then-hard combos.
  # Occurrence ranges track real call frequencies: writes are per-item-ish,
  # fsyncs per commit/drain, set_len only at creation/checkpoint.
  spec=$(awk -v s="$SEED" -v i="$i" 'BEGIN {
    srand(s * 131 + i * 7919); rand();
    c = rand();
    if (c < 0.40) {
      k = rand();
      kind = (k < 0.34) ? "eio" : (k < 0.67) ? "enospc" : "torn";
      printf "write:%s@%d", kind, 1 + int(rand() * 500);
    } else if (c < 0.60) {
      op = (rand() < 0.7) ? "sync_data" : "sync_all";
      kind = (rand() < 0.5) ? "eio" : "enospc";
      occ = (op == "sync_all") ? 1 : 1 + int(rand() * 18);
      printf "%s:%s@%d", op, kind, occ;
    } else if (c < 0.70) {
      kind = (rand() < 0.5) ? "enospc" : "eio";
      printf "set_len:%s@%d", kind, 1 + int(rand() * 3);
    } else if (c < 0.90) {
      if (rand() < 0.5) { op = "read"; kind = (rand() < 0.5) ? "eintr" : "short"; }
      else              { op = "write"; kind = "eintr"; }
      printf "%s:%s@%d", op, kind, 1 + int(rand() * 40);
    } else {
      printf "write:eintr@%d;write:eio@%d", 1 + int(rand() * 30), 50 + int(rand() * 400);
    }
  }')
  echo "--- schedule #$i ($durability): GSS_FAULT_PLAN=\"$spec\""
  if ! GSS_FAULT_PLAN="$spec" "$BIN" fault-ingest "$sketch" "$progress" "$durability" \
      "$ITEMS" >"$ingest_log" 2>&1; then
    echo "--- schedule #$i: FAILED (ingest half broke the fail-stop contract)"
    cat "$ingest_log"
    failures=$((failures + 1))
    save_artifacts "$progress" "$progress.fault" "$ingest_log"
    continue
  fi
  sed 's/^/    /' "$ingest_log"
  if grep -q "fail-stop" "$ingest_log"; then
    fired=$((fired + 1))
    hard_stops=$((hard_stops + 1))
  elif ! grep -q "injected_faults 0" "$ingest_log"; then
    fired=$((fired + 1))
    transient_runs=$((transient_runs + 1))
  fi
  # Verify with the plan cleared: recovery itself runs against healthy I/O.
  if "$BIN" fault-verify "$sketch" "$progress" "$durability" 0; then
    echo "--- schedule #$i: OK"
  else
    echo "--- schedule #$i: FAILED"
    failures=$((failures + 1))
    save_artifacts "$progress" "$progress.fault" "$ingest_log"
  fi
done

echo "fault matrix: $fired/$SCHEDULES schedules fired" \
  "($hard_stops hard fail-stops, $transient_runs transient-absorbed runs)"
# Vacuous-pass guard: a matrix where most schedules never inject anything proves
# nothing — the occurrence ranges above are tuned so the large majority fire.
if [ $((fired * 3)) -lt $((SCHEDULES * 2)) ]; then
  echo "fault matrix: vacuous — fewer than 2/3 of schedules injected a fault"
  echo "    (seed $SEED); retune the occurrence ranges for this ITEMS setting"
  exit 1
fi
if [ "$failures" -ne 0 ]; then
  echo "fault matrix: $failures failure(s) — reproduce with SEED=$SEED;" \
    "sidecars saved under $ARTIFACTS/"
  exit 1
fi
echo "fault matrix: all $SCHEDULES schedules survived without panics or false acks"
