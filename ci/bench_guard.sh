#!/usr/bin/env bash
# Throughput regression guard: compare freshly measured bench reports against the
# committed trajectory and fail when smoke ingest throughput drops by more than the
# tolerance (CI boxes are noisy; 30% is a regression, not jitter).
#
# Accepts one or more <committed, fresh> pairs, so the memory trajectory
# (BENCH_ingest.json) and the file-backed trajectory (BENCH_ingest_file.json) are
# guarded by one invocation.  For each report the single-thread sharded rate is the
# hard gate; the 4- and 8-writer sharded rates are printed so the multi-writer
# trajectory is tracked per PR (they gate softly: only a collapse below the tolerance
# relative to their committed points fails).
#
# Usage: ci/bench_guard.sh <committed json> <fresh json> [<committed json> <fresh json>]...
set -euo pipefail

if [ "$#" -lt 2 ] || [ $(($# % 2)) -ne 0 ]; then
  echo "usage: bench_guard.sh <committed json> <fresh json> [<committed> <fresh>]..."
  exit 2
fi

# Fresh must reach at least this fraction of the committed rate.  The committed
# trajectory is produced on the dev container class; if CI moves to a much slower
# runner class, set BENCH_GUARD_TOLERANCE in the workflow instead of letting the
# guard rot red.
TOLERANCE="${BENCH_GUARD_TOLERANCE:-0.70}"

# The reports are written by gss_experiments::BenchReport: one result object per line,
# so each sharded entry is grep-able without a JSON parser.
extract() { # <file> <threads>
  grep -o "\"name\": \"sharded\", \"threads\": $2\.[0-9]*[^}]*" "$1" |
    grep -o '"mitems_per_sec": [0-9.]*' | head -1 | grep -o '[0-9.]*$'
}

failures=0
while [ "$#" -gt 0 ]; do
  baseline="$1"
  fresh="$2"
  shift 2
  old=$(extract "$baseline" 1)
  new=$(extract "$fresh" 1)
  if [ -z "$old" ] || [ -z "$new" ]; then
    echo "bench guard: could not extract single-thread throughput from" \
      "$baseline/$fresh (old='$old' new='$new')"
    failures=$((failures + 1))
    continue
  fi
  echo "bench guard [$fresh]: committed ${old} Mitems/s, fresh ${new} Mitems/s" \
    "(tolerance ${TOLERANCE}x)"
  if ! awk -v a="$old" -v b="$new" -v t="$TOLERANCE" 'BEGIN { exit !(b + 0 >= a * t) }'; then
    echo "bench guard [$fresh]: single-thread ingest regressed more than $(awk \
      -v t="$TOLERANCE" 'BEGIN { printf "%d", (1 - t) * 100 }')% vs the committed trajectory"
    failures=$((failures + 1))
    continue
  fi
  # Multi-writer points: tracked (printed) on every run, gated only against collapse.
  for threads in 4 8; do
    old_mt=$(extract "$baseline" "$threads")
    new_mt=$(extract "$fresh" "$threads")
    [ -z "$old_mt" ] || [ -z "$new_mt" ] && continue
    echo "bench guard [$fresh]: ${threads}-writer sharded committed ${old_mt}," \
      "fresh ${new_mt} Mitems/s"
    if ! awk -v a="$old_mt" -v b="$new_mt" -v t="$TOLERANCE" \
      'BEGIN { exit !(b + 0 >= a * t) }'; then
      echo "bench guard [$fresh]: ${threads}-writer ingest collapsed vs the committed point"
      failures=$((failures + 1))
    fi
  done
done

if [ "$failures" -ne 0 ]; then
  echo "bench guard: $failures failure(s)"
  exit 1
fi
echo "bench guard: OK"
