#!/usr/bin/env bash
# Throughput regression guard: compare freshly measured bench reports against the
# committed trajectory and fail when smoke ingest throughput drops by more than the
# tolerance (CI boxes are noisy; 30% is a regression, not jitter).
#
# Accepts one or more <committed, fresh> pairs, so the memory trajectory
# (BENCH_ingest.json), the file-backed trajectory (BENCH_ingest_file.json) and the
# durability trajectory (BENCH_durability.json) are guarded by one invocation.
#
# Ingest reports: the single-thread sharded rate is the hard gate; the 4- and 8-writer
# sharded rates are printed so the multi-writer trajectory is tracked per PR (they
# gate softly: only a collapse below the tolerance relative to their committed points
# fails).
#
# Durability reports (detected via `"bench": "durability"`): the Strict file-ingest
# rate is the hard gate — it is the number group commit exists to protect — and the
# Buffered and in-memory rates gate softly the same way.  On top of the trajectory
# gate, the *fresh* report must keep Strict within GUARD_STRICT_GAP of Buffered
# (default 0.75x, i.e. Strict may give back at most 25% on a noisy CI box; the
# committed trajectory itself records Strict within 10%).
#
# Usage: ci/bench_guard.sh <committed json> <fresh json> [<committed json> <fresh json>]...
set -euo pipefail

if [ "$#" -lt 2 ] || [ $(($# % 2)) -ne 0 ]; then
  echo "usage: bench_guard.sh <committed json> <fresh json> [<committed> <fresh>]..."
  exit 2
fi

# Fresh must reach at least this fraction of the committed rate.  The committed
# trajectory is produced on the dev container class; if CI moves to a much slower
# runner class, set BENCH_GUARD_TOLERANCE in the workflow instead of letting the
# guard rot red.
TOLERANCE="${BENCH_GUARD_TOLERANCE:-0.70}"

# The fresh Strict rate must stay within this fraction of the fresh Buffered rate
# (durability reports only).
STRICT_GAP="${GUARD_STRICT_GAP:-0.75}"

# The reports are written by gss_experiments::BenchReport: one result object per line,
# so each sharded entry is grep-able without a JSON parser.
extract() { # <file> <threads>
  grep -o "\"name\": \"sharded\", \"threads\": $2\.[0-9]*[^}]*" "$1" |
    grep -o '"mitems_per_sec": [0-9.]*' | head -1 | grep -o '[0-9.]*$'
}

# Durability rows carry no threads field; they are keyed by name alone.
extract_named() { # <file> <name>
  grep -o "\"name\": \"$2\"[^}]*" "$1" |
    grep -o '"mitems_per_sec": [0-9.]*' | head -1 | grep -o '[0-9.]*$'
}

# Gates fresh ≥ committed × tolerance; prints the comparison. Returns 1 on regression.
gate() { # <label> <committed rate> <fresh rate>
  echo "bench guard: $1 committed ${2} Mitems/s, fresh ${3} Mitems/s (tolerance ${TOLERANCE}x)"
  awk -v a="$2" -v b="$3" -v t="$TOLERANCE" 'BEGIN { exit !(b + 0 >= a * t) }'
}

failures=0
while [ "$#" -gt 0 ]; do
  baseline="$1"
  fresh="$2"
  shift 2
  if grep -q '"bench": "durability"' "$fresh"; then
    old=$(extract_named "$baseline" ingest_file_strict)
    new=$(extract_named "$fresh" ingest_file_strict)
    if [ -z "$old" ] || [ -z "$new" ]; then
      echo "bench guard: could not extract strict ingest throughput from" \
        "$baseline/$fresh (old='$old' new='$new')"
      failures=$((failures + 1))
      continue
    fi
    if ! gate "[$fresh] strict file ingest" "$old" "$new"; then
      echo "bench guard [$fresh]: Strict ingest regressed vs the committed trajectory"
      failures=$((failures + 1))
      continue
    fi
    # Buffered and memory rates: tracked, gated only against collapse.
    for name in ingest_file_buffered ingest_memory; do
      old_n=$(extract_named "$baseline" "$name")
      new_n=$(extract_named "$fresh" "$name")
      [ -z "$old_n" ] || [ -z "$new_n" ] && continue
      if ! gate "[$fresh] $name" "$old_n" "$new_n"; then
        echo "bench guard [$fresh]: $name collapsed vs the committed point"
        failures=$((failures + 1))
      fi
    done
    # Group commit's whole point: Strict must track Buffered, fresh-vs-fresh.
    buffered=$(extract_named "$fresh" ingest_file_buffered)
    if [ -n "$buffered" ]; then
      echo "bench guard [$fresh]: strict ${new} vs buffered ${buffered} Mitems/s" \
        "(floor ${STRICT_GAP}x)"
      if ! awk -v s="$new" -v b="$buffered" -v g="$STRICT_GAP" \
        'BEGIN { exit !(s + 0 >= b * g) }'; then
        echo "bench guard [$fresh]: Strict fell below ${STRICT_GAP}x of Buffered —" \
          "group commit is no longer absorbing the fsync cost"
        failures=$((failures + 1))
      fi
    fi
    continue
  fi
  old=$(extract "$baseline" 1)
  new=$(extract "$fresh" 1)
  if [ -z "$old" ] || [ -z "$new" ]; then
    echo "bench guard: could not extract single-thread throughput from" \
      "$baseline/$fresh (old='$old' new='$new')"
    failures=$((failures + 1))
    continue
  fi
  if ! gate "[$fresh] single-thread sharded" "$old" "$new"; then
    echo "bench guard [$fresh]: single-thread ingest regressed more than $(awk \
      -v t="$TOLERANCE" 'BEGIN { printf "%d", (1 - t) * 100 }')% vs the committed trajectory"
    failures=$((failures + 1))
    continue
  fi
  # Multi-writer points: tracked (printed) on every run, gated only against collapse.
  for threads in 4 8; do
    old_mt=$(extract "$baseline" "$threads")
    new_mt=$(extract "$fresh" "$threads")
    [ -z "$old_mt" ] || [ -z "$new_mt" ] && continue
    if ! gate "[$fresh] ${threads}-writer sharded" "$old_mt" "$new_mt"; then
      echo "bench guard [$fresh]: ${threads}-writer ingest collapsed vs the committed point"
      failures=$((failures + 1))
    fi
  done
done

if [ "$failures" -ne 0 ]; then
  echo "bench guard: $failures failure(s)"
  exit 1
fi
echo "bench guard: OK"
