#!/usr/bin/env bash
# Throughput regression guard: compare a freshly measured BENCH_ingest.json against the
# committed trajectory and fail when smoke ingest throughput drops by more than the
# tolerance (CI boxes are noisy; 30% is a regression, not jitter).
#
# Usage: ci/bench_guard.sh <committed BENCH_ingest.json> <fresh BENCH_ingest.json>
set -euo pipefail

BASELINE="${1:?usage: bench_guard.sh <committed json> <fresh json>}"
FRESH="${2:?usage: bench_guard.sh <committed json> <fresh json>}"
# Fresh must reach at least this fraction of the committed single-thread rate.  The
# committed trajectory is produced on the dev container class; if CI moves to a much
# slower runner class, set BENCH_GUARD_TOLERANCE in the workflow instead of letting the
# guard rot red.
TOLERANCE="${BENCH_GUARD_TOLERANCE:-0.70}"

# The reports are written by gss_experiments::BenchReport: one result object per line,
# so the single-thread sharded entry is grep-able without a JSON parser.
extract() {
  grep -o '"name": "sharded", "threads": 1\.[0-9]*[^}]*' "$1" |
    grep -o '"mitems_per_sec": [0-9.]*' | head -1 | grep -o '[0-9.]*$'
}

old=$(extract "$BASELINE")
new=$(extract "$FRESH")
if [ -z "$old" ] || [ -z "$new" ]; then
  echo "bench guard: could not extract single-thread throughput (old='$old' new='$new')"
  exit 1
fi

echo "bench guard: committed ${old} Mitems/s, fresh ${new} Mitems/s (tolerance ${TOLERANCE}x)"
if awk -v a="$old" -v b="$new" -v t="$TOLERANCE" 'BEGIN { exit !(b + 0 >= a * t) }'; then
  echo "bench guard: OK"
else
  echo "bench guard: ingest throughput regressed more than $(awk -v t="$TOLERANCE" \
    'BEGIN { printf "%d", (1 - t) * 100 }')% vs the committed trajectory"
  exit 1
fi
