#!/usr/bin/env bash
# Server smoke: boot a real gss-server on a random port and prove the whole
# networked contract end to end with the gss-client binary:
#
#   * liveness (HEALTH) and byte-level protocol conformance (`wirecheck`: pinned
#     frame layout, typed rejection of garbage and lying length fields),
#   * batch ingest + edge/successor/reachability queries + snapshot + stats on a
#     strict tenant, plus a buffered tenant on the same server,
#   * per-tenant token-bucket rate limiting (typed RATE_LIMITED, 0x0005),
#   * SIGKILL the server mid-ingest, restart it on the same data directory, and
#     verify every acknowledged item of the strict tenant recovered (per-shard
#     write-ahead-log replay; stale .lock sidecars from the dead process are
#     reclaimed),
#   * the poisoned-tenant error path: restart with GSS_FAULT_PLAN scoped to one
#     tenant's WAL by path token — ingest into it must answer a typed 0x02xx
#     store-failed error on a connection that stays open, while the other tenant
#     keeps serving.
#
# Usage: ci/server_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p gss-server --bins
SERVER=target/release/gss-server
CLIENT=target/release/gss-client

WORKDIR="$(mktemp -d)"
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

cat > "$WORKDIR/tenants.conf" <<'EOF'
tenant alpha   token=alpha-secret   durability=strict   shards=2 width=128
tenant beta    token=beta-secret    durability=buffered shards=2 width=128
tenant limited token=limited-secret rate=5 burst=5 width=64
tenant poison  token=poison-secret  durability=strict shards=1 width=64
EOF

# Boots $SERVER against $WORKDIR and parses the OS-assigned port from its one
# stdout line (`listening on ADDR`).  Extra env (GSS_FAULT_PLAN) flows through.
start_server() {
  : > "$WORKDIR/server.out"
  "$SERVER" --listen 127.0.0.1:0 --data-dir "$WORKDIR/data" \
    --config "$WORKDIR/tenants.conf" \
    > "$WORKDIR/server.out" 2> "$WORKDIR/server.err" &
  server_pid=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^listening on //p' "$WORKDIR/server.out" | head -n 1)
    [ -n "$ADDR" ] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
      echo "server smoke: server died during boot"
      cat "$WORKDIR/server.err"
      exit 1
    fi
    sleep 0.1
  done
  if [ -z "$ADDR" ]; then
    echo "server smoke: server never printed its address"
    exit 1
  fi
  echo "server smoke: up at $ADDR (pid $server_pid)"
}

alpha() { "$CLIENT" --addr "$ADDR" --tenant alpha --token alpha-secret "$@"; }

# ---- Phase 1: liveness, byte-level conformance, ingest/query/snapshot ----
start_server
"$CLIENT" --addr "$ADDR" health
"$CLIENT" --addr "$ADDR" wirecheck

alpha ingest 300 --batch 100 | tail -n 1
alpha verify 300
weight=$(alpha edge 41 42)
[ "$weight" = "41" ] || { echo "edge 41->42: expected 41, got $weight"; exit 1; }
alpha successors 1 | grep -q '\[2\]' || { echo "successors of 1 should be [2]"; exit 1; }
[ "$(alpha reachable 1 301)" = "true" ] || { echo "1 must reach 301"; exit 1; }
[ "$(alpha reachable 301 1)" = "false" ] || { echo "301 must not reach 1"; exit 1; }
alpha snapshot
alpha stats | grep -q 'poisoned false' || { echo "alpha must not be poisoned"; exit 1; }

# A second tenant with the buffered contract on the same server.
"$CLIENT" --addr "$ADDR" --tenant beta --token beta-secret ingest 100 | tail -n 1
"$CLIENT" --addr "$ADDR" --tenant beta --token beta-secret verify 100

# Wrong token must be a typed auth failure (0x0003), not a hang or crash.
if "$CLIENT" --addr "$ADDR" --tenant alpha --token wrong edge 1 2 \
    2> "$WORKDIR/auth.err"; then
  echo "server smoke: wrong token was accepted"; exit 1
fi
grep -q '0x0003' "$WORKDIR/auth.err" || { cat "$WORKDIR/auth.err"; exit 1; }
echo "server smoke: phase 1 (protocol + queries + snapshot + auth) OK"

# ---- Phase 2: rate limiting is per-tenant and typed ----
limited() { "$CLIENT" --addr "$ADDR" --tenant limited --token limited-secret "$@"; }
limited ingest 5 > /dev/null              # drains the 5-token burst
if limited ingest 1 2> "$WORKDIR/rate.err"; then
  echo "server smoke: rate limit never kicked in"; exit 1
fi
grep -q '0x0005' "$WORKDIR/rate.err" || { cat "$WORKDIR/rate.err"; exit 1; }
alpha edge 41 42 > /dev/null              # neighbours stay unthrottled
echo "server smoke: phase 2 (rate limiting) OK"

# ---- Phase 3: SIGKILL mid-ingest, restart, strict recovery ----
# A stream far larger than the kill window can drain; the client prints one
# `acked K` line per acknowledged batch, so its log is the recovery floor.
alpha ingest 5000000 --batch 500 > "$WORKDIR/ingest.log" 2>&1 &
client_pid=$!
sleep 1
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
wait "$client_pid" 2>/dev/null && {
  echo "server smoke: ingest finished before the kill — vacuous; raise the count"
  exit 1
}
acked=$(sed -n 's/^acked //p' "$WORKDIR/ingest.log" | tail -n 1)
acked="${acked:-0}"
if [ "$acked" -lt 500 ]; then
  echo "server smoke: only $acked items acked before the kill — kill landed too early"
  exit 1
fi
echo "server smoke: SIGKILLed the server at $acked acknowledged items"

start_server
alpha verify "$acked"
alpha stats | grep -q 'poisoned false' || { echo "alpha poisoned after restart"; exit 1; }
echo "server smoke: phase 3 (kill at $acked acked items, restart, zero loss) OK"

# ---- Phase 4: poisoned-tenant error path, scoped by path token ----
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
# Fail every write to the poison tenant's WAL from the second on: occurrence 1 is
# the WAL magic written at create time, so the store opens and the first ingest
# commit faults.  The path token keeps every other tenant on healthy I/O.
plan=$(seq 2 64 | awk '{ printf "write:eio@%d;", $1 } END { printf "path=poison.gss.shard0.wal" }')
GSS_FAULT_PLAN="$plan" start_server
"$CLIENT" --addr "$ADDR" --tenant poison --token poison-secret poison-check
alpha verify 300                           # the healthy tenant still serves
"$CLIENT" --addr "$ADDR" health
echo "server smoke: phase 4 (poisoned tenant typed error, neighbour healthy) OK"

echo "server smoke: all phases passed"
