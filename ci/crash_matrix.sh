#!/usr/bin/env bash
# Crash kill-matrix: prove that a SIGKILL'd file-backed ingest run is recoverable.
#
# For each mode (strict, buffered, threaded) this starts the matching `crash_harness`
# ingest, SIGKILLs it at a randomized offset, then runs the matching verify, which
# reopens the sketch file(s) (write-ahead-log replay) and asserts:
#   * strict:   zero acknowledged-item loss (window 0), and
#   * buffered: loss bounded by the documented WAL buffer window (items), and
#   * threaded: 3 concurrent strict writers over a sharded sketch (one file + log per
#               shard) — zero loss of any thread's acknowledged items, with the killed
#               process's stale .lock sidecars reclaimed on reopen, and
#   * group-commit: the threaded run under a deliberately wide group-commit window
#               (50 ms / 4 MiB), so the kill lands mid-window with the cadence
#               `fdatasync` still pending — strict acknowledgement is write()-based,
#               so zero acknowledged loss must hold anyway, and
#   * in all:   every recovered item's edge answers with at least its exact weight.
#
# Usage: ci/crash_matrix.sh [iterations-per-mode]   (default 3)
set -euo pipefail
cd "$(dirname "$0")/.."

ITERATIONS="${1:-3}"
ITEMS=1200000
# Documented buffered loss window: WAL_BUFFER_BYTES (64 KiB) at ≥ ~30 logged bytes per
# item is < 2200 items; 4096 adds headroom for the in-flight batch.
BUFFERED_WINDOW=4096

# release-witness = release + debug-assertions: the kill-matrix doubles as the runtime
# lock-order witness's integration run — an inversion panics the harness and fails CI.
cargo build --profile release-witness -p gss-experiments --bin crash_harness
BIN=target/release-witness/crash_harness

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

# Deterministic-but-varied kill offsets; rerun with SEED=<n> (or the legacy
# CRASH_MATRIX_SEED) to reproduce a failing run exactly.
SEED="${SEED:-${CRASH_MATRIX_SEED:-$RANDOM}}"
echo "crash matrix: $ITERATIONS iterations per mode, seed $SEED"

# Failing iterations park their progress sidecars (plus the seed) here so CI can
# upload them as artifacts; the workdir itself is a mktemp and vanishes on exit.
ARTIFACTS="target/matrix-artifacts"
save_artifacts() {
  mkdir -p "$ARTIFACTS"
  echo "$SEED" > "$ARTIFACTS/crash-matrix-seed"
  for f in "$@"; do
    [ -e "$f" ] && cp "$f" "$ARTIFACTS/" || true
  done
}

failures=0
for mode in strict buffered threaded group-commit; do
  window=0
  ingest_cmd=ingest
  verify_cmd=verify
  durability="$mode"
  case "$mode" in
    buffered) window=$BUFFERED_WINDOW ;;
    threaded)
      ingest_cmd=ingest-threaded
      verify_cmd=verify-threaded
      durability=strict
      ;;
    group-commit)
      ingest_cmd=ingest-group
      verify_cmd=verify-group
      durability=strict
      ;;
  esac
  for i in $(seq 1 "$ITERATIONS"); do
    sketch="$WORKDIR/crash-$mode-$i.gss"
    progress="$WORKDIR/progress-$mode-$i"
    # Kill offset in [0.30, 1.29] s: from "barely created" to "deep into the stream",
    # varied per mode and per iteration (and per run via the seed).
    delay=$(awk -v s="$SEED" -v i="$i" -v m="$mode" 'BEGIN {
      srand(s * 31 + i * 7919 + (m == "buffered") * 104729 + (m == "threaded") * 611953 \
        + (m == "group-commit") * 999331);
      rand();
      printf "%.2f", 0.30 + rand()
    }')
    "$BIN" "$ingest_cmd" "$sketch" "$progress" "$durability" "$ITEMS" &
    pid=$!
    sleep "$delay"
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    if [ "$mode" = threaded ] || [ "$mode" = group-commit ]; then
      # The progress files carry no trailing newline: read each one separately.
      acknowledged=$(for f in "$progress".0 "$progress".1 "$progress".2; do
        cat "$f" 2>/dev/null; echo
      done | awk '{ sum += $1 } END { print sum + 0 }')
    else
      acknowledged=$(cat "$progress" 2>/dev/null || echo 0)
    fi
    # A completed ingest means the kill landed after the final sync: the iteration
    # would "verify" a cleanly checkpointed file and prove nothing about recovery.
    if [ "$acknowledged" = "$ITEMS" ]; then
      echo "--- $mode #$i: ingest finished all $ITEMS items before the ${delay}s kill —"
      echo "    vacuous iteration; raise ITEMS for this runner class"
      failures=$((failures + 1))
      save_artifacts "$progress" "$progress".0 "$progress".1 "$progress".2
      continue
    fi
    echo "--- $mode #$i: killed after ${delay}s at $acknowledged acknowledged items"
    if "$BIN" "$verify_cmd" "$sketch" "$progress" "$durability" "$window"; then
      echo "--- $mode #$i: OK"
    else
      echo "--- $mode #$i: FAILED"
      failures=$((failures + 1))
      save_artifacts "$progress" "$progress".0 "$progress".1 "$progress".2
    fi
  done
done

if [ "$failures" -ne 0 ]; then
  echo "crash matrix: $failures failure(s) — reproduce with SEED=$SEED;" \
    "progress sidecars saved under $ARTIFACTS/"
  exit 1
fi
echo "crash matrix: all $((4 * ITERATIONS)) kills recovered within their windows"
